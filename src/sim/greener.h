/**
 * @file
 * GREENER-style power-gated MRF banks: an energy-accounting variant.
 *
 * GREENER (GPU register file at eighteen nanometers, power-gating
 * line of work in PAPERS.md) partitions the main register file into
 * banks and power-gates the banks a kernel never allocates. Access
 * traffic is exactly the flat baseline's — the scheme changes no
 * dynamic behaviour — but MRF storage-array energy is charged only
 * for the powered fraction of the file, derived statically from the
 * kernel's register footprint. Wire energy is unchanged (operands
 * still traverse the full datapath distance), as is the energy of
 * idealised gating: this backend is an optimistic accounting bound,
 * documented as such in docs/schemes.md.
 */

#ifndef RFH_SIM_GREENER_H
#define RFH_SIM_GREENER_H

#include "energy/energy_model.h"
#include "ir/kernel.h"
#include "sim/access_counters.h"

namespace rfh {

/** MRF banks available for power gating. */
inline constexpr int kGreenerBanks = 8;

/**
 * Banks of the MRF that must stay powered for @p k: one bank serves
 * kMaxRegs / kGreenerBanks registers, and the kernel's footprint is
 * its highest referenced register plus one. Always at least 1.
 */
int greenerActiveBanks(const Kernel &k);

/**
 * Energy of @p c with the MRF storage array scaled to the powered
 * fraction @p activeBanks / kGreenerBanks. Upper-level and wire
 * energies are unchanged.
 */
double greenerEnergyPJ(const AccessCounts &c, const EnergyModel &em,
                       int activeBanks);

} // namespace rfh

#endif // RFH_SIM_GREENER_H
