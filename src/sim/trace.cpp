#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "core/metrics.h"
#include "core/trace_events.h"
#include "ir/cfg_analysis.h"
#include "ir/reaching_defs.h"
#include "sim/machine.h"
#include "sim/replay_kernels.h"
#include "sim/simt.h"

namespace rfh {

namespace {

/** Recorder observability (shared by the scalar and SIMT recorders). */
struct RecorderMetrics
{
    Counter &recordings = globalMetrics().counter("trace.recordings");
    Counter &instrs = globalMetrics().counter("trace.record.instrs");
    Timer &record = globalMetrics().timer("trace.record");
};

RecorderMetrics &
recorderMetrics()
{
    static RecorderMetrics m;
    return m;
}

void
noteRecording(const Kernel &k, const DecodedTrace &trace, double sec)
{
    RecorderMetrics &rm = recorderMetrics();
    rm.recordings.add();
    rm.instrs.add(trace.lin.size());
    rm.record.addSec(sec);
    TraceEventLog &log = TraceEventLog::global();
    if (log.enabled()) {
        double endUs = TraceEventLog::nowUs();
        log.add("recordTrace", "trace", endUs - sec * 1e6, sec * 1e6,
                "{\"kernel\":\"" + k.name + "\",\"instrs\":" +
                    std::to_string(trace.lin.size()) + "}");
    }
}

} // namespace

KernelTrace
recordTrace(const Kernel &k, const RunConfig &cfg)
{
    KernelTrace trace;
    trace.blockCounts.assign(k.blocks.size(), 0);
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::vector<int> path;
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.maxInstrsPerWarp) {
            if (warp.idx == 0) {
                // Entering a block (including re-entry via a loop).
                path.push_back(warp.block);
                trace.blockCounts[warp.block]++;
            }
            step(k, warp);
            executed++;
            trace.instructions++;
        }
        trace.warpPaths.push_back(std::move(path));
    }
    return trace;
}

std::string
validateTrace(const Kernel &k, const KernelTrace &trace)
{
    Cfg cfg(k);
    std::ostringstream err;
    for (int w = 0; w < trace.numWarps(); w++) {
        const auto &path = trace.warpPaths[w];
        if (path.empty()) {
            err << "warp " << w << ": empty path";
            return err.str();
        }
        if (path.front() != 0) {
            err << "warp " << w << ": does not start at the entry block";
            return err.str();
        }
        for (std::size_t i = 0; i + 1 < path.size(); i++) {
            const auto &succs = cfg.succs(path[i]);
            if (std::find(succs.begin(), succs.end(), path[i + 1]) ==
                succs.end()) {
                err << "warp " << w << ": illegal transition "
                    << path[i] << " -> " << path[i + 1];
                return err.str();
            }
        }
        // The final block must be able to terminate the kernel.
        const auto &bb = k.blocks[path.back()];
        if (bb.instrs.empty() || bb.instrs.back().op != Opcode::EXIT) {
            err << "warp " << w << ": path ends in block "
                << path.back() << " which has no exit";
            return err.str();
        }
    }
    // Block counts must agree with the paths.
    std::vector<std::uint64_t> counts(k.blocks.size(), 0);
    for (const auto &path : trace.warpPaths)
        for (int b : path)
            counts[b]++;
    if (counts != trace.blockCounts)
        return "block counts disagree with recorded paths";
    return "";
}

std::vector<std::uint64_t>
dynamicInstrsPerBlock(const Kernel &k, const KernelTrace &t)
{
    std::vector<std::uint64_t> out(k.blocks.size(), 0);
    for (std::size_t b = 0; b < k.blocks.size(); b++)
        out[b] = t.blockCounts[b] * k.blocks[b].instrs.size();
    return out;
}

DecodedTrace
recordDecodedTrace(const Kernel &k, const RunConfig &cfg)
{
    Stopwatch watch;
    DecodedTrace trace;
    trace.warpBegin.reserve(cfg.numWarps + 1);
    trace.warpEndLin.reserve(cfg.numWarps);
    trace.warpBegin.push_back(0);
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            std::uint8_t flags = 0;
            if (!in.pred || warp.regs[*in.pred] != 0)
                flags |= kReplayExecuted;
            StepInfo si = step(k, warp);
            if (si.branchTaken)
                flags |= kReplayBranchTaken;
            trace.lin.push_back(lin);
            trace.flags.push_back(flags);
            executed++;
        }
        trace.warpBegin.push_back(
            static_cast<std::uint32_t>(trace.lin.size()));
        trace.warpEndLin.push_back(warp.done ? -1 : warp.pc(k));
    }
    trace.buildPlanes(k);
    noteRecording(k, trace, watch.elapsedSec());
    return trace;
}

DecodedTrace
recordSimtDecodedTrace(const Kernel &k, int numWarps, int width,
                       std::uint64_t maxInstrsPerWarp)
{
    Stopwatch watch;
    Cfg cfg_graph(k);
    DecodedTrace trace;
    trace.warpBegin.push_back(0);
    for (int w = 0; w < numWarps; w++) {
        SimtWarp warp(k, cfg_graph, static_cast<std::uint32_t>(w),
                      width);
        std::uint64_t executed = 0;
        // Mirrors the SIMT executor's loop (executed++ in the test).
        while (!warp.done() && executed++ < maxInstrsPerWarp) {
            int lin = warp.currentLin();
            const Instruction &in = warp.currentInstr();
            LaneMask mask = warp.activeMask();
            bool any_enabled = false;
            for (int l = 0; l < width; l++) {
                if (!((mask >> l) & 1u))
                    continue;
                if (!in.pred || warp.laneRegsNow(l)[*in.pred] != 0) {
                    any_enabled = true;
                    break;
                }
            }
            std::uint8_t flags = 0;
            if (any_enabled)
                flags |= kReplayExecuted;
            if (any_enabled && in.op == Opcode::BRA &&
                in.branchTarget <= k.ref(lin).block)
                flags |= kReplayBranchTaken;
            warp.step();
            trace.lin.push_back(lin);
            trace.flags.push_back(flags);
        }
        trace.warpBegin.push_back(
            static_cast<std::uint32_t>(trace.lin.size()));
        trace.warpEndLin.push_back(warp.done() ? -1
                                               : warp.currentLin());
    }
    trace.buildPlanes(k);
    noteRecording(k, trace, watch.elapsedSec());
    return trace;
}

void
DecodedTrace::buildPlanes(const Kernel &k)
{
    const std::size_t n = lin.size();
    const std::size_t words = (n + 63) / 64;
    execWords.assign(words, 0);
    takenWords.assign(words, 0);
    llWords.assign(words, 0);
    if (n == 0) {
        executedInstrs = 0;
        takenBranches = 0;
        return;
    }
    FlagsClassCounts cls = classifyReplayFlags(flags.data(), n);
    executedInstrs = cls.executed;
    takenBranches = cls.taken;
    packReplayPlanes(flags.data(), n, execWords.data(),
                     takenWords.data());
    // Long-latency-with-destination records (the only ones that can
    // set the replay pending set), masked to executed records.
    std::vector<std::uint8_t> ll(k.numInstrs(), 0);
    for (int l = 0; l < k.numInstrs(); l++) {
        const Instruction &in = k.instr(l);
        ll[l] = in.longLatency() && in.dst ? 1 : 0;
    }
    for (std::size_t t = 0; t < n; t++)
        llWords[t / 64] |=
            static_cast<std::uint64_t>(ll[lin[t]]) << (t % 64);
    for (std::size_t w = 0; w < words; w++)
        llWords[w] &= execWords[w];
}

namespace {

/**
 * Static per-instruction flag: does any consumer of this result run
 * on the shared datapath? Such values bypass the hardware LRF
 * (Section 6.2: the compiler guarantees shared-unit operands are
 * available in the RFC or MRF).
 */
std::vector<std::uint8_t>
sharedConsumers(const Kernel &k, const ReachingDefs &rdefs)
{
    std::vector<std::uint8_t> shared_consumer(k.numInstrs(), 0);
    for (int lin = 0; lin < k.numInstrs(); lin++) {
        for (DefId d : rdefs.defsAt(lin)) {
            for (const UseSite &u : rdefs.uses(d)) {
                if (u.slot == kPredSlot)
                    continue;
                if (isSharedUnit(k.instr(u.lin).unit()))
                    shared_consumer[lin] = 1;
            }
        }
    }
    return shared_consumer;
}

} // namespace

ReplayDecode::ReplayDecode(const Kernel &k, const ReachingDefs *rdefs)
{
    int n = k.numInstrs();
    instr.reserve(n);
    op.reserve(n);
    touched.reserve(n);
    used.reserve(n);
    defined.reserve(n);
    datapath.reserve(n);
    shared.reserve(n);
    backwardBranch.reserve(n);
    regReads.reserve(n);
    regWrites.reserve(n);
    std::vector<std::uint8_t> shared_consumer;
    if (rdefs) {
        shared_consumer = sharedConsumers(k, *rdefs);
        hasSharedConsumerInfo_ = true;
    }
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        instr.push_back(in);
        RegSet def = definedRegs(in);
        RegSet use = usedRegs(in);
        defined.push_back(def);
        used.push_back(use);
        touched.push_back(use | def);
        bool is_shared = isSharedUnit(in.unit());
        bool backward = in.op == Opcode::BRA && in.branchTarget >= 0 &&
            in.branchTarget <= k.ref(lin).block;
        datapath.push_back(
            static_cast<std::uint8_t>(datapathOf(in.unit())));
        shared.push_back(is_shared ? 1 : 0);
        backwardBranch.push_back(backward ? 1 : 0);
        regReads.push_back(static_cast<std::uint8_t>(in.numRegReads()));
        regWrites.push_back(
            static_cast<std::uint8_t>(in.numRegWrites()));

        ReplayOp o;
        for (int s = 0; s < in.numSrcs; s++)
            if (in.srcs[s].isReg)
                o.src[o.nsrc++] = in.srcs[s].reg;
        o.pred = in.pred ? static_cast<std::int16_t>(*in.pred) : -1;
        o.dst = in.dst ? static_cast<std::int16_t>(*in.dst) : -1;
        o.halves = in.wide ? 2 : 1;
        o.dp = static_cast<std::uint8_t>(datapathOf(in.unit()));
        if (in.longLatency())
            o.flags |= kOpLongLat;
        if (is_shared)
            o.flags |= kOpShared;
        if (backward)
            o.flags |= kOpBackward;
        if (in.wide)
            o.flags |= kOpWide;
        if (rdefs && !in.wide && in.unit() == UnitClass::ALU &&
            !shared_consumer[lin])
            o.flags |= kOpLrfAble;
        op.push_back(o);
    }
}

} // namespace rfh
