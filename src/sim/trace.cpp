#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "ir/cfg_analysis.h"
#include "sim/machine.h"

namespace rfh {

KernelTrace
recordTrace(const Kernel &k, const RunConfig &cfg)
{
    KernelTrace trace;
    trace.blockCounts.assign(k.blocks.size(), 0);
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::vector<int> path;
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.maxInstrsPerWarp) {
            if (warp.idx == 0) {
                // Entering a block (including re-entry via a loop).
                path.push_back(warp.block);
                trace.blockCounts[warp.block]++;
            }
            step(k, warp);
            executed++;
            trace.instructions++;
        }
        trace.warpPaths.push_back(std::move(path));
    }
    return trace;
}

std::string
validateTrace(const Kernel &k, const KernelTrace &trace)
{
    Cfg cfg(k);
    std::ostringstream err;
    for (int w = 0; w < trace.numWarps(); w++) {
        const auto &path = trace.warpPaths[w];
        if (path.empty()) {
            err << "warp " << w << ": empty path";
            return err.str();
        }
        if (path.front() != 0) {
            err << "warp " << w << ": does not start at the entry block";
            return err.str();
        }
        for (std::size_t i = 0; i + 1 < path.size(); i++) {
            const auto &succs = cfg.succs(path[i]);
            if (std::find(succs.begin(), succs.end(), path[i + 1]) ==
                succs.end()) {
                err << "warp " << w << ": illegal transition "
                    << path[i] << " -> " << path[i + 1];
                return err.str();
            }
        }
        // The final block must be able to terminate the kernel.
        const auto &bb = k.blocks[path.back()];
        if (bb.instrs.empty() || bb.instrs.back().op != Opcode::EXIT) {
            err << "warp " << w << ": path ends in block "
                << path.back() << " which has no exit";
            return err.str();
        }
    }
    // Block counts must agree with the paths.
    std::vector<std::uint64_t> counts(k.blocks.size(), 0);
    for (const auto &path : trace.warpPaths)
        for (int b : path)
            counts[b]++;
    if (counts != trace.blockCounts)
        return "block counts disagree with recorded paths";
    return "";
}

std::vector<std::uint64_t>
dynamicInstrsPerBlock(const Kernel &k, const KernelTrace &t)
{
    std::vector<std::uint64_t> out(k.blocks.size(), 0);
    for (std::size_t b = 0; b < k.blocks.size(); b++)
        out[b] = t.blockCounts[b] * k.blocks[b].instrs.size();
    return out;
}

} // namespace rfh
