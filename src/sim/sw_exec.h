/**
 * @file
 * Software-managed hierarchy executor.
 *
 * Executes a kernel that has been annotated by the HierarchyAllocator,
 * counting accesses at the levels the compiler selected. The executor
 * doubles as a checker for the allocator: every upper-level read is
 * verified to return the bit-exact architectural value, every
 * annotation is checked against the physical state (entry validity,
 * register identity, level restrictions, strand invalidation), and any
 * violation is reported instead of silently miscounting.
 */

#ifndef RFH_SIM_SW_EXEC_H
#define RFH_SIM_SW_EXEC_H

#include <memory>
#include <string>

#include "compiler/allocation.h"
#include "ir/analysis_bundle.h"
#include "ir/kernel.h"
#include "sim/access_counters.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** Software-executor configuration. */
struct SwExecConfig
{
    RunConfig run;
    /**
     * Section 7 "never flush" idealisation: upper-level contents
     * survive deschedules and strand boundaries; stalls on outstanding
     * long-latency values deschedule instead of being errors.
     */
    bool idealNoFlush = false;
};

/** Result of a software-hierarchy execution. */
struct SwExecResult
{
    AccessCounts counts;
    /** Empty when the run verified clean; else the first violation. */
    std::string error;

    bool
    ok() const
    {
        return error.empty();
    }
};

/**
 * Execute annotated kernel @p k under the software-managed hierarchy.
 *
 * @param k kernel previously processed by HierarchyAllocator.
 * @param opts the allocation options the kernel was compiled with
 *        (defines the physical ORF/LRF sizes).
 * @param analyses optional precomputed analyses of a kernel with
 *        @p k's structure (the pristine, un-annotated kernel is
 *        fine); computed locally when null.
 */
SwExecResult runSwHierarchy(const Kernel &k, const AllocOptions &opts,
                            const SwExecConfig &cfg = {},
                            const AnalysisBundle *analyses = nullptr);

struct DecodedTrace;

/**
 * Replay-mode counterpart of runSwHierarchy: walk the pre-decoded
 * dynamic stream @p trace (recorded once from the pristine kernel
 * under @p cfg.run; annotations do not change the dynamic path) doing
 * only access accounting at the annotated levels — no functional
 * execution and no value verification. Structural annotation checks
 * (level restrictions, entry ranges) are preserved so a failing
 * allocation stops at the same instruction with the same message;
 * bit-exactness of values is the direct executor's job, which remains
 * the verification oracle.
 */
SwExecResult replaySwHierarchy(const Kernel &k, const AllocOptions &opts,
                               const DecodedTrace &trace,
                               const SwExecConfig &cfg = {},
                               const AnalysisBundle *analyses = nullptr);

class PipelineAccounting;

/**
 * Per-warp software-hierarchy accounting for the cycle-level pipeline
 * (sim/pipeline.h): the replay accounting walk over the *annotated*
 * kernel @p k, called once per dynamic instruction at issue.
 * Annotated ORF/LRF operands bypass the collector banks. Structural
 * annotation violations stop the pipeline with the functional
 * executors' exact error message. @p k, @p analyses, and @p counts
 * must outlive the returned object.
 */
std::unique_ptr<PipelineAccounting> makeSwHierarchyAccounting(
    const Kernel &k, const AllocOptions &opts, const SwExecConfig &cfg,
    const AnalysisBundle *analyses, AccessCounts &counts);

} // namespace rfh

#endif // RFH_SIM_SW_EXEC_H
