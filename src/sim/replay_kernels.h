/**
 * @file
 * Data-oriented inner loops of the replay engine.
 *
 * The replay hot path is dominated by two streaming passes over the
 * structure-of-arrays dynamic trace: classifying the per-record flags
 * byte (executed / branch-taken) and packing those classifications
 * into 64-bit bit-planes that the executors then consume with
 * popcount sweeps and bit scans instead of per-record branches.
 *
 * Both passes live in this translation unit so a single TU can be
 * compiled with the vectorizer enabled and its report checked by CI
 * (scripts/check.sh vectorize-report): the classification loop is the
 * designated must-vectorize loop. Keep it free of branches, function
 * calls, and aliasing so the compiler can prove it vectorizable.
 */

#ifndef RFH_SIM_REPLAY_KERNELS_H
#define RFH_SIM_REPLAY_KERNELS_H

#include <cstddef>
#include <cstdint>

namespace rfh {

/** Totals of one pass over a replay flags stream. */
struct FlagsClassCounts
{
    /** Records with kReplayExecuted set. */
    std::uint64_t executed = 0;
    /** Records with kReplayBranchTaken set. */
    std::uint64_t taken = 0;
};

/**
 * Classify @p n replay flags bytes in one streaming pass: how many
 * records executed (bit 0) and how many took a branch (bit 1).
 *
 * This is the vectorize-report gated loop (see file comment).
 */
FlagsClassCounts classifyReplayFlags(const std::uint8_t *flags,
                                     std::size_t n);

/**
 * Pack the flags stream into two 64-bit bit-planes: bit (t % 64) of
 * word (t / 64) of @p execWords / @p takenWords holds the executed /
 * branch-taken classification of record @p t. Both outputs must have
 * room for (n + 63) / 64 words; trailing bits of the last word are
 * zero.
 */
void packReplayPlanes(const std::uint8_t *flags, std::size_t n,
                      std::uint64_t *execWords,
                      std::uint64_t *takenWords);

/**
 * Histogram the dynamic stream by static instruction: bumps
 * @p histAll[lin[t]] once per record. @p histAll must be zeroed by
 * the caller and sized to the kernel's instruction count.
 */
void histogramRecords(const std::int32_t *lin, std::size_t n,
                      std::uint32_t *histAll);

/**
 * For every CLEAR bit of @p words (bits [0, n)), bump
 * @p hist[lin[t]] — used to histogram the rare not-executed records
 * so the executed histogram is histAll - histOff.
 */
void histogramClearBits(const std::uint64_t *words,
                        const std::int32_t *lin, std::size_t n,
                        std::uint32_t *hist);

} // namespace rfh

#endif // RFH_SIM_REPLAY_KERNELS_H
