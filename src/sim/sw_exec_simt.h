/**
 * @file
 * SIMT-divergent verifying executor for the software hierarchy.
 *
 * The scalar executor (sw_exec.h) checks annotations along one thread's
 * path; this executor runs full SIMT warps (active masks, serialised
 * hammock sides, reconvergence, per-lane predication) and keeps a
 * separate ORF/LRF state per lane — exactly the paper's physical
 * organisation, where every entry is per-thread.
 *
 * Per-lane validity follows each lane's own dynamic path: a lane's
 * upper levels invalidate when that lane's consecutive active
 * instructions cross strands (or loop backwards), and a warp-level
 * deschedule (outstanding long-latency touch) invalidates every lane.
 * Any allocation that is only correct for converged warps fails here
 * with a lane-precise diagnostic.
 */

#ifndef RFH_SIM_SW_EXEC_SIMT_H
#define RFH_SIM_SW_EXEC_SIMT_H

#include "compiler/allocation.h"
#include "ir/kernel.h"
#include "sim/access_counters.h"
#include "sim/sw_exec.h"

namespace rfh {

/** SIMT-executor configuration. */
struct SimtExecConfig
{
    int numWarps = 2;
    int width = 8;  ///< Lanes per warp (1..32).
    std::uint64_t maxInstrsPerWarp = 1u << 20;
};

/**
 * Execute annotated kernel @p k as SIMT warps with per-lane hierarchy
 * state, verifying every access bit-exactly.
 */
SwExecResult runSwHierarchySimt(const Kernel &k, const AllocOptions &opts,
                                const SimtExecConfig &cfg = {});

struct DecodedTrace;

/**
 * Replay-mode counterpart of runSwHierarchySimt: walk a pre-decoded
 * SIMT stream (from recordSimtDecodedTrace with matching warp count,
 * width, and instruction cap) doing only warp-level access counting.
 * Per-lane value verification is the direct executor's job; counts
 * are identical on any allocation the direct executor accepts.
 */
SwExecResult replaySwHierarchySimt(const Kernel &k,
                                   const AllocOptions &opts,
                                   const DecodedTrace &trace,
                                   const SimtExecConfig &cfg = {});

} // namespace rfh

#endif // RFH_SIM_SW_EXEC_SIMT_H
