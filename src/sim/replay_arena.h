/**
 * @file
 * Bump allocator for per-run replay executor state.
 *
 * Every replay call needs a handful of short-lived flat tables —
 * per-instruction histograms, annotation cost tables, RFC rings —
 * whose sizes depend on the kernel. Allocating them from the heap per
 * grid cell costs a malloc/free pair each and scatters them across
 * the address space; the arena instead carves them out of a few
 * retained blocks with pointer bumps, and a sweep over the
 * (scheme x entries) grid reuses the same memory for every cell.
 *
 * Blocks are never freed by reset(), only rewound, so pointers handed
 * out after the last reset() stay valid until the next one. Each
 * executor call acquires the thread-local arena (which resets it), so
 * allocations never outlive the call that made them.
 */

#ifndef RFH_SIM_REPLAY_ARENA_H
#define RFH_SIM_REPLAY_ARENA_H

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace rfh {

/** Growable block-list bump allocator; see file comment. */
class ReplayArena
{
  public:
    /**
     * Allocate @p n objects of trivially-destructible type T,
     * uninitialized (reused blocks hand back dirty memory).
     */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is rewound, never destructed");
        return static_cast<T *>(
            allocBytes(n * sizeof(T), alignof(T)));
    }

    /** Allocate @p n objects of type T, zero-filled. */
    template <typename T>
    T *
    allocZeroed(std::size_t n)
    {
        T *p = alloc<T>(n);
        std::memset(static_cast<void *>(p), 0, n * sizeof(T));
        return p;
    }

    /** Rewind every block; capacity (and block list) is retained. */
    void
    reset()
    {
        for (Block &b : blocks_)
            b.used = 0;
        cur_ = 0;
    }

    /** Total bytes of retained block capacity. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    void *allocBytes(std::size_t bytes, std::size_t align);

    std::vector<Block> blocks_;
    std::size_t cur_ = 0;
};

/**
 * Acquire this thread's replay arena: resets it (all prior
 * allocations die) and returns it ready for one executor call. Bumps
 * the replay.arena_reuse counter when the arena already holds
 * capacity from an earlier call, and keeps the replay.arena_bytes
 * gauge at the high-water retained capacity.
 */
ReplayArena &acquireThreadReplayArena();

} // namespace rfh

#endif // RFH_SIM_REPLAY_ARENA_H
