#include "sim/replay_arena.h"

#include "core/metrics.h"

namespace rfh {

void *
ReplayArena::allocBytes(std::size_t bytes, std::size_t align)
{
    for (; cur_ < blocks_.size(); cur_++) {
        Block &b = blocks_[cur_];
        std::size_t off = (b.used + align - 1) & ~(align - 1);
        if (off + bytes <= b.size) {
            b.used = off + bytes;
            return b.data.get() + off;
        }
        // Too small for this request; later requests may still fit in
        // an earlier block, but a linear cursor keeps reset() O(1)
        // amortized and fragmentation is bounded by one block.
    }
    constexpr std::size_t kMinBlock = 64 * 1024;
    Block b;
    b.size = bytes > kMinBlock ? bytes : kMinBlock;
    b.data = std::make_unique<std::byte[]>(b.size);
    b.used = bytes;
    blocks_.push_back(std::move(b));
    cur_ = blocks_.size() - 1;
    return blocks_.back().data.get();
}

ReplayArena &
acquireThreadReplayArena()
{
    static thread_local ReplayArena arena;
    static Counter &reuse =
        globalMetrics().counter("replay.arena_reuse");
    static Gauge &bytes = globalMetrics().gauge("replay.arena_bytes");
    if (arena.capacityBytes() > 0) {
        reuse.add();
        bytes.set(static_cast<double>(arena.capacityBytes()));
    }
    arena.reset();
    return arena;
}

} // namespace rfh
