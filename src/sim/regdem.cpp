#include "sim/regdem.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "sim/machine.h"
#include "sim/pipeline_account.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/**
 * Pure counting walk shared by both drivers: everything the counts
 * depend on is (lin, enabled) plus the static demotion set.
 */
class RegDemWarpSim
{
  public:
    RegDemWarpSim(const ReplayDecode &dec, const RegSet &demoted,
                  AccessCounts &counts)
        : dec_(dec), demoted_(demoted), counts_(counts)
    {
    }

    void
    onInstr(int lin, bool enabled)
    {
        const ReplayOp &o = dec_.op[lin];
        const Datapath dp = static_cast<Datapath>(o.dp);

        auto read_one = [&](Reg r) {
            if (demoted_.test(r)) {
                counts_.wbReads++;  // shared-memory spill read
                if (plan_)
                    plan_->numBypass++;
            } else {
                counts_.read(Level::MRF, dp);
                if (plan_)
                    plan_->mrfReg[plan_->numMrf++] = r;
            }
        };
        for (int s = 0; s < o.nsrc; s++)
            read_one(o.src[s]);
        if (o.pred >= 0)
            read_one(static_cast<Reg>(o.pred));

        if (o.dst >= 0 && enabled) {
            for (int h = 0; h < o.halves; h++) {
                Reg r = static_cast<Reg>(o.dst + h);
                if (demoted_.test(r))
                    counts_.wbWrites++;  // shared-memory spill write
                else
                    counts_.write(Level::MRF, dp);
            }
        }

        counts_.instructions++;
    }

    /**
     * Capture the operand sourcing of subsequent onInstr() calls into
     * @p plan (MRF reads vs spill-space bypasses); null to stop.
     */
    void
    setPlan(OperandPlan *plan)
    {
        plan_ = plan;
    }

  private:
    const ReplayDecode &dec_;
    const RegSet &demoted_;
    AccessCounts &counts_;
    OperandPlan *plan_ = nullptr;
};

/** Pipeline adapter: stateless per warp, shared demotion set. */
class RegDemWarpAccountant final : public WarpAccountant
{
  public:
    RegDemWarpAccountant(const ReplayDecode &dec, const RegSet &demoted,
                         AccessCounts &counts)
        : sim_(dec, demoted, counts)
    {
    }

    void
    onIssue(int lin, bool enabled, bool /*taken*/,
            std::int32_t /*nextLin*/, OperandPlan &plan) override
    {
        sim_.setPlan(&plan);
        sim_.onInstr(lin, enabled);
        sim_.setPlan(nullptr);
    }

  private:
    RegDemWarpSim sim_;
};

/** Pipeline accounting factory for register demotion. */
class RegDemAccounting final : public PipelineAccounting
{
  public:
    RegDemAccounting(const Kernel &k, const RegDemConfig &cfg,
                     const ReplayDecode *dec, AccessCounts &counts)
        : counts_(counts),
          demoted_(regdemDemotedSet(k, kRegDemRegsPerEntry * cfg.entries))
    {
        dec_ = dec ? dec : &localDec_.emplace(k);
    }

    std::unique_ptr<WarpAccountant>
    makeWarp(int /*warp*/) override
    {
        return std::make_unique<RegDemWarpAccountant>(*dec_, demoted_,
                                                      counts_);
    }

  private:
    AccessCounts &counts_;
    RegSet demoted_;
    std::optional<ReplayDecode> localDec_;
    const ReplayDecode *dec_;
};

/** Register-demotion observability, fed by both drivers. */
void
noteRegDemRun(const AccessCounts &counts, bool replay)
{
    static Counter &runs = globalMetrics().counter("sim.regdem.runs");
    static Counter &replays =
        globalMetrics().counter("sim.regdem.runs.replay");
    static Counter &spills =
        globalMetrics().counter("sim.regdem.spillAccesses");
    runs.add();
    if (replay)
        replays.add();
    spills.add(counts.wbReads + counts.wbWrites);
}

const ReplayDecode &
resolveDecode(const Kernel &k, const ReplayDecode *dec,
              std::optional<ReplayDecode> &local)
{
    if (dec)
        return *dec;
    return local.emplace(k);
}

} // namespace

RegSet
regdemDemotedSet(const Kernel &k, int residentBudget)
{
    // Static access frequency per register: every named source,
    // predicate, and destination half counts one site.
    std::array<std::uint32_t, kMaxRegs> uses{};
    const int n = k.numInstrs();
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        for (int s = 0; s < in.numSrcs; s++)
            if (in.srcs[s].isReg)
                uses[in.srcs[s].reg]++;
        if (in.pred)
            uses[*in.pred]++;
        if (in.dst) {
            const int halves = in.wide ? 2 : 1;
            for (int h = 0; h < halves; h++)
                uses[static_cast<Reg>(*in.dst + h)]++;
        }
    }

    std::vector<int> regs;
    for (int r = 0; r < kMaxRegs; r++)
        if (uses[r] > 0)
            regs.push_back(r);
    // Hottest first; ties keep the lower register resident.
    std::stable_sort(regs.begin(), regs.end(), [&](int a, int b) {
        if (uses[a] != uses[b])
            return uses[a] > uses[b];
        return a < b;
    });

    RegSet demoted;
    for (std::size_t i = static_cast<std::size_t>(
             residentBudget < 0 ? 0 : residentBudget);
         i < regs.size(); i++)
        demoted.set(static_cast<std::size_t>(regs[i]));
    return demoted;
}

double
regdemSpillEnergyPJ(const AccessCounts &c, const EnergyParams &params)
{
    return static_cast<double>(c.wbReads) * kRegDemSpillFactor *
        params.mrfReadPJ +
        static_cast<double>(c.wbWrites) * kRegDemSpillFactor *
        params.mrfWritePJ;
}

AccessCounts
runRegDem(const Kernel &k, const RegDemConfig &cfg,
          const ReplayDecode *dec)
{
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, localDec);
    const RegSet demoted =
        regdemDemotedSet(k, kRegDemRegsPerEntry * cfg.entries);

    AccessCounts counts;
    RegDemWarpSim sim(d, demoted, counts);
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            int lin = warp.pc(k);
            const Instruction &in = k.instr(lin);
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            step(k, warp);
            executed++;
            sim.onInstr(lin, enabled);
        }
    }
    noteRegDemRun(counts, /*replay=*/false);
    return counts;
}

AccessCounts
replayRegDem(const Kernel &k, const RegDemConfig &cfg,
             const DecodedTrace &trace, const ReplayDecode *dec)
{
    std::optional<ReplayDecode> localDec;
    const ReplayDecode &d = resolveDecode(k, dec, localDec);
    const RegSet demoted =
        regdemDemotedSet(k, kRegDemRegsPerEntry * cfg.entries);

    AccessCounts counts;
    RegDemWarpSim sim(d, demoted, counts);
    for (int w = 0; w < trace.numWarps(); w++) {
        for (std::uint32_t t = trace.warpBegin[w];
             t < trace.warpBegin[w + 1]; t++) {
            sim.onInstr(trace.lin[t],
                        trace.flags[t] & kReplayExecuted);
        }
    }
    noteRegDemRun(counts, /*replay=*/true);
    return counts;
}

std::unique_ptr<PipelineAccounting>
makeRegDemAccounting(const Kernel &k, const RegDemConfig &cfg,
                     const ReplayDecode *dec, AccessCounts &counts)
{
    return std::make_unique<RegDemAccounting>(k, cfg, dec, counts);
}

} // namespace rfh
