#include "sim/pipeline_account.h"

#include <optional>

#include "sim/trace.h"

namespace rfh {

namespace {

/** Flat-MRF accounting; counts mirror replayBaseline exactly. */
class FlatWarpAccountant final : public WarpAccountant
{
  public:
    FlatWarpAccountant(const ReplayDecode &dec, AccessCounts &counts)
        : dec_(dec), counts_(counts)
    {
    }

    void
    onIssue(int lin, bool enabled, bool /*taken*/,
            std::int32_t /*nextLin*/, OperandPlan &plan) override
    {
        const ReplayOp &o = dec_.op[lin];
        const Datapath dp = static_cast<Datapath>(o.dp);
        counts_.read(Level::MRF, dp, dec_.regReads[lin]);
        if (enabled)
            counts_.write(Level::MRF, dp, dec_.regWrites[lin]);
        counts_.instructions++;
        for (int s = 0; s < o.nsrc; s++)
            plan.mrfReg[plan.numMrf++] = o.src[s];
        if (o.pred >= 0)
            plan.mrfReg[plan.numMrf++] = static_cast<Reg>(o.pred);
    }

  private:
    const ReplayDecode &dec_;
    AccessCounts &counts_;
};

/** Factory for FlatWarpAccountant; owns the fallback decode. */
class FlatAccounting final : public PipelineAccounting
{
  public:
    FlatAccounting(const Kernel &k, const ReplayDecode *dec,
                   AccessCounts &counts)
        : counts_(counts)
    {
        dec_ = dec ? dec : &local_.emplace(k);
    }

    std::unique_ptr<WarpAccountant>
    makeWarp(int /*warp*/) override
    {
        return std::make_unique<FlatWarpAccountant>(*dec_, counts_);
    }

  private:
    std::optional<ReplayDecode> local_;
    const ReplayDecode *dec_;
    AccessCounts &counts_;
};

} // namespace

std::unique_ptr<PipelineAccounting>
makeFlatAccounting(const Kernel &k, const ReplayDecode *dec,
                   AccessCounts &counts)
{
    return std::make_unique<FlatAccounting>(k, dec, counts);
}

} // namespace rfh
