#include "sim/mrf_banks.h"

#include <algorithm>
#include <array>

#include "sim/machine.h"

namespace rfh {

MrfBankStats
measureBankConflicts(const Kernel &k, const MrfBankConfig &cfg)
{
    MrfBankStats stats;
    for (int w = 0; w < cfg.run.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.run.maxInstrsPerWarp) {
            const Instruction &in = k.instr(warp.pc(k));

            // Count accesses per bank for this instruction's register
            // source operands (the writes use the banks' write ports
            // and never conflict with the 1R1W organisation's reads).
            std::array<int, 64> per_bank{};
            int max_per_bank = 0;
            int operands = 0;
            auto touch = [&](Reg r) {
                int b = bankOf(r, w, cfg);
                per_bank[b]++;
                max_per_bank = std::max(max_per_bank, per_bank[b]);
                operands++;
            };
            for (int s = 0; s < in.numSrcs; s++)
                if (in.srcs[s].isReg)
                    touch(in.srcs[s].reg);
            if (in.pred)
                touch(*in.pred);

            stats.instructions++;
            stats.operandsFetched += operands;
            // All banks are read in parallel: the fetch takes as many
            // cycles as the most-contended bank needs (minimum one
            // cycle even for operand-less instructions).
            stats.fetchCycles += std::max(1, max_per_bank);
            if (max_per_bank > 1)
                stats.conflictedInstructions++;

            step(k, warp);
            executed++;
        }
    }
    return stats;
}

} // namespace rfh
