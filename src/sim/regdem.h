/**
 * @file
 * RegDem-style register demotion to shared-memory spill space, after
 * Sakdhnagool et al. (arXiv:1907.02894).
 *
 * RegDem shrinks a kernel's architectural register footprint by
 * *demoting* cold registers out of the MRF into a per-thread slice of
 * shared memory, trading register-file capacity (an occupancy lever)
 * for extra shared-memory traffic. This backend models the traffic
 * and energy consequences on our flat-MRF substrate:
 *
 *  - the compile phase ranks registers by static access frequency and
 *    keeps only a *resident budget* of the hottest ones in the MRF
 *    (budget = kRegDemRegsPerEntry × entries, so the sweep axis
 *    controls how aggressively the kernel is squeezed);
 *  - accesses to resident registers count as normal MRF traffic;
 *  - accesses to demoted registers are tallied in the writeback
 *    counters (wbReads / wbWrites — informational overhead counters
 *    the standard energy model does not price) and charged as
 *    shared-memory accesses by the scheme's energy accounting at
 *    kRegDemSpillFactor × the corresponding MRF access energy.
 *
 * There is no caching state at all, so both engines are pure counting
 * walks over the dynamic stream and agree by construction.
 */

#ifndef RFH_SIM_REGDEM_H
#define RFH_SIM_REGDEM_H

#include <memory>

#include "energy/energy_params.h"
#include "ir/kernel.h"
#include "ir/liveness.h"
#include "sim/access_counters.h"
#include "sim/baseline_exec.h"

namespace rfh {

struct DecodedTrace;
struct ReplayDecode;

/** Resident MRF registers bought per sweep entry. */
inline constexpr int kRegDemRegsPerEntry = 4;

/**
 * Shared-memory access energy relative to an MRF access of the same
 * kind (larger array, bank crossbar traversal).
 */
inline constexpr double kRegDemSpillFactor = 1.5;

/** Register-demotion configuration. */
struct RegDemConfig
{
    /** Sweep axis: resident budget = kRegDemRegsPerEntry × entries. */
    int entries = 3;
    RunConfig run;
};

/**
 * The demotion decision of the compile phase: the set of registers of
 * @p k that do NOT fit in a resident budget of @p residentBudget MRF
 * registers. Registers are ranked by static access count (sources,
 * predicates, and destination halves), hottest first; ties keep the
 * lower-numbered register resident. Deterministic and purely static.
 */
RegSet regdemDemotedSet(const Kernel &k, int residentBudget);

/**
 * Spill traffic energy of @p c under @p params (pJ): the demoted
 * accesses tallied in the writeback counters, priced as shared-memory
 * accesses at kRegDemSpillFactor × MRF access energy.
 */
double regdemSpillEnergyPJ(const AccessCounts &c,
                           const EnergyParams &params);

/**
 * Execute @p k under register demotion and count accesses.
 *
 * @param dec optional shared pre-decode (ExperimentCache::decode);
 *        built locally when null.
 */
AccessCounts runRegDem(const Kernel &k, const RegDemConfig &cfg = {},
                       const ReplayDecode *dec = nullptr);

/**
 * Replay-mode counterpart of runRegDem: walk the pre-decoded dynamic
 * stream @p trace (recorded from @p k under the same RunConfig as
 * @p cfg.run). Counts are identical to runRegDem by construction.
 */
AccessCounts replayRegDem(const Kernel &k, const RegDemConfig &cfg,
                          const DecodedTrace &trace,
                          const ReplayDecode *dec = nullptr);

class PipelineAccounting;

/**
 * Per-warp register-demotion accounting for the cycle-level pipeline
 * (sim/pipeline.h). Demoted operands bypass the MRF banks (they live
 * in shared-memory spill space). @p k, @p dec, and @p counts must
 * outlive the returned object.
 */
std::unique_ptr<PipelineAccounting> makeRegDemAccounting(
    const Kernel &k, const RegDemConfig &cfg, const ReplayDecode *dec,
    AccessCounts &counts);

} // namespace rfh

#endif // RFH_SIM_REGDEM_H
