#include "sim/baseline_exec.h"

#include <algorithm>
#include <optional>

#include "sim/machine.h"
#include "sim/replay_arena.h"
#include "sim/replay_kernels.h"
#include "sim/trace.h"

namespace rfh {

AccessCounts
runBaseline(const Kernel &k, const RunConfig &cfg)
{
    AccessCounts counts;
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));
        std::uint64_t executed = 0;
        while (!warp.done && executed < cfg.maxInstrsPerWarp) {
            const Instruction &in = k.instr(warp.pc(k));
            Datapath dp = datapathOf(in.unit());
            // Operands are fetched before the predicate squashes the
            // instruction; only the writeback is suppressed.
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            counts.read(Level::MRF, dp, in.numRegReads());
            if (enabled)
                counts.write(Level::MRF, dp, in.numRegWrites());
            counts.instructions++;
            step(k, warp);
            executed++;
        }
    }
    return counts;
}

AccessCounts
replayBaseline(const Kernel &k, const DecodedTrace &trace,
               const ReplayDecode *dec)
{
    // Pre-resolve the two per-instruction quantities the flat-MRF
    // accounting needs (or borrow them from a shared decode).
    const int n = k.numInstrs();
    std::optional<ReplayDecode> local;
    if (!dec)
        dec = &local.emplace(k);
    AccessCounts counts;
    const std::size_t total = trace.lin.size();
    if (trace.hasPlanes()) {
        // Flat-MRF accounting is a pure sum of per-instruction deltas:
        // histogram the stream by static instruction and apply each
        // delta once. The rare not-executed records come from a
        // popcount-style sweep of the executed bit-plane's clear bits.
        ReplayArena &arena = acquireThreadReplayArena();
        std::uint32_t *histAll = arena.allocZeroed<std::uint32_t>(n);
        std::uint32_t *histOff = arena.allocZeroed<std::uint32_t>(n);
        histogramRecords(trace.lin.data(), total, histAll);
        if (trace.executedInstrs != total)
            histogramClearBits(trace.execWords.data(),
                               trace.lin.data(), total, histOff);
        for (int lin = 0; lin < n; lin++) {
            const std::uint64_t all = histAll[lin];
            if (all == 0)
                continue;
            const Datapath dp =
                static_cast<Datapath>(dec->datapath[lin]);
            counts.read(Level::MRF, dp, dec->regReads[lin] * all);
            counts.write(Level::MRF, dp,
                         dec->regWrites[lin] * (all - histOff[lin]));
        }
    } else {
        for (std::size_t t = 0; t < total; t++) {
            const int lin = trace.lin[t];
            const Datapath dp =
                static_cast<Datapath>(dec->datapath[lin]);
            counts.read(Level::MRF, dp, dec->regReads[lin]);
            if (trace.flags[t] & kReplayExecuted)
                counts.write(Level::MRF, dp, dec->regWrites[lin]);
        }
    }
    counts.instructions = trace.instructions();
    return counts;
}

void
UsageStats::add(const UsageStats &o)
{
    read0 += o.read0;
    burstyMultiReads += o.burstyMultiReads;
    multiReads += o.multiReads;
    read1 += o.read1;
    read2 += o.read2;
    readMore += o.readMore;
    life1 += o.life1;
    life2 += o.life2;
    life3 += o.life3;
    lifeMore += o.lifeMore;
    totalValues += o.totalValues;
    sharedConsumed += o.sharedConsumed;
    sharedConsumedPrivateProduced += o.sharedConsumedPrivateProduced;
    instructions += o.instructions;
    regReads += o.regReads;
    regWrites += o.regWrites;
}

UsageStats
collectUsageStats(const Kernel &k, const RunConfig &cfg)
{
    UsageStats stats;
    for (int w = 0; w < cfg.numWarps; w++) {
        WarpContext warp;
        warp.reset(static_cast<std::uint32_t>(w));

        struct LiveValue
        {
            bool valid = false;
            std::uint64_t defSeq = 0;
            std::uint64_t lastReadSeq = 0;
            std::uint64_t maxReadGap = 0;
            int reads = 0;
            bool sharedProducer = false;
            bool sharedConsumer = false;
        };
        std::array<LiveValue, kMaxRegs> live{};

        auto retire = [&](LiveValue &v) {
            if (!v.valid)
                return;
            stats.totalValues++;
            if (v.reads == 0) {
                stats.read0++;
            } else if (v.reads == 1) {
                stats.read1++;
                std::uint64_t life = v.lastReadSeq - v.defSeq;
                if (life <= 1)
                    stats.life1++;
                else if (life == 2)
                    stats.life2++;
                else if (life == 3)
                    stats.life3++;
                else
                    stats.lifeMore++;
            } else if (v.reads == 2) {
                stats.read2++;
            } else {
                stats.readMore++;
            }
            if (v.reads >= 2) {
                stats.multiReads++;
                // First "gap" is production to first read; bursts are
                // about the spacing BETWEEN reads, captured in
                // maxReadGap.
                if (v.maxReadGap <= 3)
                    stats.burstyMultiReads++;
            }
            if (v.sharedConsumer) {
                stats.sharedConsumed++;
                if (!v.sharedProducer)
                    stats.sharedConsumedPrivateProduced++;
            }
            v = LiveValue();
        };

        std::uint64_t seq = 0;
        while (!warp.done && seq < cfg.maxInstrsPerWarp) {
            const Instruction &in = k.instr(warp.pc(k));
            bool shared = isSharedUnit(in.unit());
            for (int s = 0; s < in.numSrcs; s++) {
                if (!in.srcs[s].isReg)
                    continue;
                LiveValue &v = live[in.srcs[s].reg];
                if (v.valid) {
                    if (v.reads > 0)
                        v.maxReadGap = std::max(v.maxReadGap,
                                                seq - v.lastReadSeq);
                    v.reads++;
                    v.lastReadSeq = seq;
                    v.sharedConsumer = v.sharedConsumer || shared;
                }
                stats.regReads++;
            }
            if (in.pred) {
                LiveValue &v = live[*in.pred];
                if (v.valid) {
                    if (v.reads > 0)
                        v.maxReadGap = std::max(v.maxReadGap,
                                                seq - v.lastReadSeq);
                    v.reads++;
                    v.lastReadSeq = seq;
                }
                stats.regReads++;
            }
            bool enabled = !in.pred || warp.regs[*in.pred] != 0;
            if (in.dst && enabled) {
                int n = in.wide ? 2 : 1;
                for (int h = 0; h < n; h++) {
                    LiveValue &v = live[*in.dst + h];
                    retire(v);
                    v.valid = true;
                    v.defSeq = seq;
                    v.reads = 0;
                    v.sharedProducer = shared;
                }
                stats.regWrites += n;
            }
            stats.instructions++;
            step(k, warp);
            seq++;
        }
        for (auto &v : live)
            retire(v);
    }
    return stats;
}

} // namespace rfh
