#include "sim/replay_kernels.h"

namespace rfh {

// Compiled with the loop vectorizer enabled (see src/CMakeLists.txt);
// scripts/check.sh vectorize-report rebuilds this TU with
// -fopt-info-vec-optimized and fails when the classification loop
// below stops vectorizing.

FlagsClassCounts
classifyReplayFlags(const std::uint8_t *flags, std::size_t n)
{
    std::uint64_t executed = 0;
    std::uint64_t taken = 0;
    // The designated must-vectorize loop: a dual masked reduction over
    // the flags bytes, no branches, no calls, single input stream.
    for (std::size_t i = 0; i < n; i++) {
        executed += flags[i] & 1u;
        taken += (flags[i] >> 1) & 1u;
    }
    FlagsClassCounts out;
    out.executed = executed;
    out.taken = taken;
    return out;
}

void
packReplayPlanes(const std::uint8_t *flags, std::size_t n,
                 std::uint64_t *execWords, std::uint64_t *takenWords)
{
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; w++) {
        std::uint64_t e = 0;
        std::uint64_t t = 0;
        const std::size_t base = w * 64;
        const std::size_t lim = n - base < 64 ? n - base : 64;
        for (std::size_t b = 0; b < lim; b++) {
            const std::uint64_t f = flags[base + b];
            e |= (f & 1u) << b;
            t |= ((f >> 1) & 1u) << b;
        }
        execWords[w] = e;
        takenWords[w] = t;
    }
}

void
histogramRecords(const std::int32_t *lin, std::size_t n,
                 std::uint32_t *histAll)
{
    for (std::size_t t = 0; t < n; t++)
        histAll[lin[t]]++;
}

void
histogramClearBits(const std::uint64_t *words, const std::int32_t *lin,
                   std::size_t n, std::uint32_t *hist)
{
    const std::size_t nwords = (n + 63) / 64;
    for (std::size_t w = 0; w < nwords; w++) {
        std::uint64_t clear = ~words[w];
        if (w == nwords - 1 && (n % 64) != 0)
            clear &= (std::uint64_t{1} << (n % 64)) - 1;
        while (clear) {
            const int b = __builtin_ctzll(clear);
            clear &= clear - 1;
            hist[lin[w * 64 + b]]++;
        }
    }
}

} // namespace rfh
