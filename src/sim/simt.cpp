#include "sim/simt.h"

namespace rfh {

namespace {

/**
 * Per-lane memories keep the scalar model's determinism: lane l of
 * warp w behaves exactly like scalar thread w*width+l, so SIMT
 * execution can be checked lane-by-lane against the scalar machine.
 */
std::uint32_t
threadId(std::uint32_t warp_id, int width, int lane)
{
    return warp_id * static_cast<std::uint32_t>(width) +
        static_cast<std::uint32_t>(lane);
}

} // namespace

SimtWarp::SimtWarp(const Kernel &k, const Cfg &cfg,
                   std::uint32_t warp_id, int width)
    : kernel_(k), cfg_(cfg), lanes_(width)
{
    memories_.reserve(width);
    for (int l = 0; l < width; l++) {
        std::uint32_t tid = threadId(warp_id, width, l);
        memories_.emplace_back(tid);
        for (int r = 0; r < kMaxRegs; r++)
            lanes_[l].regs[r] = hashU32(tid * 131 + r);
        lanes_[l].regs[0] = tid;
        lanes_[l].regs[kMaxRegs - 1] = 0x1000 + tid * 0x100;
    }
    SimtStackEntry root;
    root.pcBlock = 0;
    root.pcIdx = 0;
    root.mask = width >= 32 ? 0xffffffffu : ((1u << width) - 1);
    root.rpcBlock = -1;
    stack_.push_back(root);
}

LaneMask
SimtWarp::activeMask() const
{
    return stack_.empty() ? 0 : stack_.back().mask;
}

const Instruction &
SimtWarp::currentInstr() const
{
    const SimtStackEntry &top = stack_.back();
    return kernel_.blocks[top.pcBlock].instrs[top.pcIdx];
}

void
SimtWarp::maybeReconverge()
{
    while (!stack_.empty()) {
        const SimtStackEntry &top = stack_.back();
        if (top.pcIdx == 0 && top.pcBlock == top.rpcBlock)
            stack_.pop_back();
        else
            break;
    }
}

void
SimtWarp::advanceTop()
{
    SimtStackEntry &top = stack_.back();
    top.pcIdx++;
    if (top.pcIdx >=
        static_cast<int>(kernel_.blocks[top.pcBlock].instrs.size())) {
        top.pcBlock++;
        top.pcIdx = 0;
        if (top.pcBlock >= static_cast<int>(kernel_.blocks.size())) {
            stack_.pop_back();
            return;
        }
    }
    maybeReconverge();
}

void
SimtWarp::step()
{
    SimtStackEntry &top = stack_.back();
    const Instruction &in =
        kernel_.blocks[top.pcBlock].instrs[top.pcIdx];
    LaneMask mask = top.mask;
    issued_++;
    activeLanes_ += static_cast<std::uint64_t>(
        __builtin_popcount(mask));

    if (in.op == Opcode::EXIT) {
        // All active lanes terminate; continue any pending paths.
        stack_.pop_back();
        maybeReconverge();
        return;
    }

    if (in.op == Opcode::BRA) {
        LaneMask taken = 0;
        if (!in.pred) {
            taken = mask;
        } else {
            for (int l = 0; l < width(); l++)
                if ((mask >> l) & 1u)
                    if (lanes_[l].regs[*in.pred] != 0)
                        taken |= 1u << l;
        }
        int fall_block = top.pcBlock + 1;
        bool fall_exits =
            fall_block >= static_cast<int>(kernel_.blocks.size());
        if (taken == mask) {
            top.pcBlock = in.branchTarget;
            top.pcIdx = 0;
            maybeReconverge();
        } else if (taken == 0) {
            if (fall_exits) {
                stack_.pop_back();
            } else {
                top.pcBlock = fall_block;
                top.pcIdx = 0;
            }
            maybeReconverge();
        } else {
            // Divergence: serialise both sides, reconverge at the
            // branch block's immediate post-dominator.
            divergences_++;
            int rpc = cfg_.immediatePostDominator(top.pcBlock);
            int old_rpc = top.rpcBlock;
            LaneMask not_taken = mask & ~taken;
            int target = in.branchTarget;
            if (rpc >= 0) {
                // The current entry becomes the reconvergence
                // continuation for the full mask.
                top.pcBlock = rpc;
                top.pcIdx = 0;
                top.rpcBlock = old_rpc;
            } else {
                // Paths exit separately; no reconvergence entry.
                stack_.pop_back();
            }
            SimtStackEntry nt;
            nt.pcBlock = fall_block;
            nt.pcIdx = 0;
            nt.mask = not_taken;
            nt.rpcBlock = rpc;
            SimtStackEntry t;
            t.pcBlock = target;
            t.pcIdx = 0;
            t.mask = taken;
            t.rpcBlock = rpc;
            // The lower-PC side executes first (it goes on top). This
            // keeps the warp's dynamic stream monotone in layout order
            // between backward branches, which the strand model relies
            // on: a forward-taken side past a strand cut must not run
            // — and trigger the warp-level long-latency flush — while
            // the fall-through side still holds mid-strand ORF/LRF
            // bindings.
            if (!fall_exits && target > fall_block) {
                stack_.push_back(t);
                stack_.push_back(nt);
            } else {
                if (!fall_exits)
                    stack_.push_back(nt);
                stack_.push_back(t);
            }
            maybeReconverge();
        }
        return;
    }

    // Data instruction: evaluate per active lane (respecting a
    // per-lane predicate when the instruction carries one).
    for (int l = 0; l < width(); l++) {
        if (!((mask >> l) & 1u))
            continue;
        if (in.pred && lanes_[l].regs[*in.pred] == 0)
            continue;
        std::array<std::uint32_t, kMaxSrcs> ops{};
        for (int s = 0; s < in.numSrcs; s++)
            ops[s] = in.srcs[s].isReg ? lanes_[l].regs[in.srcs[s].reg]
                                      : in.srcs[s].imm;
        std::uint32_t lo = 0, hi = 0;
        evaluate(in, ops, memories_[l], lo, hi);
        if (in.dst) {
            lanes_[l].regs[*in.dst] = lo;
            if (in.wide)
                lanes_[l].regs[*in.dst + 1] = hi;
        }
    }
    advanceTop();
}

SimtStats
runSimt(const Kernel &k, int warps, int width, std::uint64_t max_instrs)
{
    Cfg cfg(k);
    SimtStats stats;
    std::uint64_t active_sum = 0;
    std::uint64_t lane_capacity = 0;
    for (int w = 0; w < warps; w++) {
        SimtWarp warp(k, cfg, static_cast<std::uint32_t>(w), width);
        std::uint64_t executed = 0;
        while (!warp.done() && executed++ < max_instrs)
            warp.step();
        stats.warpInstructions += warp.issued();
        stats.divergences += warp.divergences();
        active_sum += warp.activeLaneSum();
        lane_capacity += warp.issued() * width;
    }
    stats.simdEfficiency = lane_capacity
        ? static_cast<double>(active_sum) / lane_capacity
        : 1.0;
    return stats;
}

} // namespace rfh
