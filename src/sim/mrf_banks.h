/**
 * @file
 * MRF banking and operand-collection model (Figure 1(c), Section 2).
 *
 * The paper's MRF is built from 32 banks of 4 KB; each 128-bit entry
 * holds one register for 4 SIMT lanes, and the operand buffering and
 * distribution logic fetches a warp instruction's operands over
 * several cycles. Registers are interleaved across banks, so two
 * source operands whose registers fall in the same bank conflict and
 * serialise.
 *
 * This model measures how many operand-fetch cycles each workload
 * needs: conflicts lengthen operand collection, which is why the MRF
 * needs heavy banking and why the single-cycle-read ORF/LRF (3R/1W
 * flip-flop banks) can drop the distribution logic entirely
 * (Section 3.2).
 */

#ifndef RFH_SIM_MRF_BANKS_H
#define RFH_SIM_MRF_BANKS_H

#include <cstdint>

#include "ir/kernel.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** Banking configuration (defaults from Section 2). */
struct MrfBankConfig
{
    /** Number of MRF banks per SM. */
    int numBanks = 32;
    /**
     * Warps are distributed across banks: register r of warp w lives
     * in bank (r + w * warpBankSwizzle) % numBanks. A non-zero swizzle
     * spreads different warps' same-numbered registers over different
     * banks, the standard conflict-avoidance layout.
     */
    int warpBankSwizzle = 1;
    RunConfig run;
};

/** Operand-collection statistics. */
struct MrfBankStats
{
    std::uint64_t instructions = 0;
    /** Instructions with at least one same-bank source conflict. */
    std::uint64_t conflictedInstructions = 0;
    /** Total operand-fetch cycles (max accesses to any one bank). */
    std::uint64_t fetchCycles = 0;
    /** Total source operands fetched from the MRF. */
    std::uint64_t operandsFetched = 0;

    /** Average operand-fetch cycles per instruction. */
    double
    avgFetchCycles() const
    {
        return instructions
            ? static_cast<double>(fetchCycles) / instructions
            : 0.0;
    }

    /** Fraction of instructions that hit a bank conflict. */
    double
    conflictRate() const
    {
        return instructions
            ? static_cast<double>(conflictedInstructions) / instructions
            : 0.0;
    }
};

/**
 * Execute @p k and measure MRF bank conflicts of a flat (baseline)
 * register file, where every source operand is fetched from the MRF.
 */
MrfBankStats measureBankConflicts(const Kernel &k,
                                  const MrfBankConfig &cfg = {});

/** @return the bank holding register @p r of warp @p warp. */
inline int
bankOf(Reg r, int warp, const MrfBankConfig &cfg)
{
    return (static_cast<int>(r) + warp * cfg.warpBankSwizzle) %
        cfg.numBanks;
}

} // namespace rfh

#endif // RFH_SIM_MRF_BANKS_H
