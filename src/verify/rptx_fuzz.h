/**
 * @file
 * Grammar-driven RPTX program fuzzer.
 *
 * Generates deterministic, terminating, parser-valid kernels that go
 * well beyond the Figure-2-calibrated synthetic generator
 * (workloads/synthetic.h): where the synthetic generator deliberately
 * mimics well-behaved compiler output, the fuzzer aims for the
 * pathological control-flow and operand shapes on which allocation
 * bugs surface — nested and one-sided hammocks, forward branches that
 * land in the middle of later straight-line regions, predicated
 * stores, duplicate-read operands, SFU-heavy tails, degenerate
 * one-instruction blocks, wide results, and near-maximal register
 * pressure.
 *
 * Every generated kernel passes Kernel::validate() and terminates:
 * the only backward edges are counted loops whose dedicated counter
 * registers are never written by generated body code.
 */

#ifndef RFH_VERIFY_RPTX_FUZZ_H
#define RFH_VERIFY_RPTX_FUZZ_H

#include <cstdint>
#include <string>

#include "ir/kernel.h"

namespace rfh {

/** Fuzz-generator knobs. Defaults produce a mid-size wild kernel. */
struct FuzzParams
{
    std::uint64_t seed = 1;
    /** Approximate static instruction budget. */
    int maxInstrs = 96;
    /** Nesting depth of counted loops (0 = straight-line kernel). */
    int maxLoopDepth = 2;
    /** Nesting depth of if/else hammocks. */
    int maxHammockDepth = 2;
    /** Dynamic iterations of each counted loop (1..). */
    int maxLoopIters = 6;
    /** Emit imul.wide 64-bit producers. */
    bool allowWide = true;
    /** Emit texture fetches alongside global loads. */
    bool allowTex = true;
    /**
     * Draw destinations from nearly the whole architectural register
     * file instead of a compact window, maximising live pressure.
     */
    bool highPressure = false;
    /** Probability that a store is predicated. */
    double pPredicatedStore = 0.3;
    /** Probability that a producer repeats one register operand. */
    double pDuplicateOperand = 0.2;
    /** Probability of a forward branch skipping into later code. */
    double pForwardBranch = 0.3;
    /** Probability of a degenerate one-instruction block. */
    double pDegenerateBlock = 0.25;
    /** Probability that a region ends in an SFU-heavy tail. */
    double pSfuTail = 0.35;
};

/**
 * Generate one kernel named @p name from @p params. Deterministic:
 * identical params yield byte-identical kernels. The result always
 * satisfies Kernel::validate() == "" and terminates within
 * O(maxInstrs * maxLoopIters^maxLoopDepth) dynamic instructions.
 */
Kernel generateFuzzKernel(const std::string &name,
                          const FuzzParams &params);

/**
 * The fuzz campaign's case schedule: derive the parameter set of
 * iteration @p iter of a campaign seeded with @p seed. Iterations
 * cycle through structural extremes (loop-free, deeply nested,
 * high-pressure, SFU-heavy, degenerate-block-heavy) so a short
 * campaign still covers every grammar feature.
 */
FuzzParams fuzzCase(std::uint64_t seed, std::uint64_t iter);

} // namespace rfh

#endif // RFH_VERIFY_RPTX_FUZZ_H
