/**
 * @file
 * Differential oracle and allocator-invariant checker.
 *
 * The oracle enumerates the SchemeRegistry and runs one kernel
 * through every scheme x engine pair that must agree, diffing the
 * full result JSON (access counters, energy, allocation statistics):
 *
 *  - direct vs replay for every registered scheme (hardware-managed
 *    schemes are skipped when OracleOptions::checkHwSchemes is off);
 *  - each scheme's own conservation laws against the flat-MRF
 *    baseline counts of the same run (SchemeBackend::checkConservation);
 *  - for allocator-driven schemes additionally: the paper's static
 *    allocation invariants (checkAllocationInvariants), the scalar
 *    verifying executor vs the SIMT executor at width 1 (lane l of
 *    warp w seeds as scalar thread w*width+l, so the warp path and
 *    the warp-level access counts must match exactly), and the SIMT
 *    direct executor vs SIMT replay at the full warp width.
 *
 * Registering a new backend therefore grows the differential sweep
 * automatically; the expected pair count is a pure function of the
 * registry's capability flags (asserted in tests/test_schemes.cpp).
 * Any violation is a finding; a clean tree reports zero findings for
 * any fuzz seed, which scripts/check.sh enforces.
 */

#ifndef RFH_VERIFY_ORACLE_H
#define RFH_VERIFY_ORACLE_H

#include <string>
#include <vector>

#include "ir/analysis_bundle.h"
#include "ir/kernel.h"
#include "compiler/allocation.h"
#include "sim/baseline_exec.h"

namespace rfh {

/** What kind of problem a finding reports. */
enum class FindingKind
{
    EXEC_ERROR,   ///< An executor rejected the run outright.
    DISCREPANCY,  ///< Two must-match runs disagreed.
    INVARIANT,    ///< An allocation invariant was violated.
};

/** @return "exec-error", "discrepancy", or "invariant". */
std::string_view findingKindName(FindingKind kind);

/** One oracle finding. */
struct OracleFinding
{
    FindingKind kind = FindingKind::DISCREPANCY;
    /** Which check fired, e.g. "sw3/direct-vs-replay". */
    std::string check;
    /** Human-readable description of the disagreement. */
    std::string detail;
};

/**
 * Deliberate fault injection for testing the oracle itself: a
 * perturbation applied to one leg of one differential pair so tests
 * (and the shrinker test) can assert that a discrepancy is caught.
 * NONE in production.
 */
enum class OraclePerturb
{
    NONE,
    /** Add one spurious MRF read to the sw-three-level replay leg. */
    EXTRA_MRF_READ,
    /** Drop one ORF write count from the sw-three-level replay leg. */
    DROP_ORF_WRITE,
};

/** Oracle configuration. */
struct OracleOptions
{
    /** Execution parameters shared by every leg. */
    RunConfig run;
    /** ORF/RFC entries per thread. */
    int entries = 3;
    /** Include the hardware-cache schemes in the differential sweep. */
    bool checkHwSchemes = true;
    /** Include the SIMT pairs (width-1 vs scalar, direct vs replay). */
    bool checkSimt = true;
    /** Lanes per warp for the full-width SIMT pair. */
    int simtWidth = 8;
    /** Test-only fault injection; NONE in production. */
    OraclePerturb perturb = OraclePerturb::NONE;
};

/** Outcome of one oracle run over one kernel. */
struct OracleReport
{
    std::vector<OracleFinding> findings;
    /** Differential pairs compared. */
    int pairsChecked = 0;
    /** Static invariant sites examined (annotation reads/writes). */
    int invariantSites = 0;
    /**
     * The run hit the per-warp instruction cap. Truncated executions
     * carry no verdict (engines cut the stream at different points),
     * so no pairs were compared and findings is empty.
     */
    bool truncated = false;

    bool
    ok() const
    {
        return findings.empty();
    }

    /** One-line result, or a newline-joined finding list. */
    std::string summary() const;
};

/**
 * Run every differential pair and invariant check over @p k, which
 * must satisfy Kernel::validate() == "" and terminate under
 * @p opts.run. Deterministic: identical inputs produce identical
 * reports.
 */
OracleReport runOracle(const Kernel &k, const OracleOptions &opts = {});

/**
 * Statically verify the allocation annotations of @p k (previously
 * processed by HierarchyAllocator with @p opts) against the paper's
 * invariants, walking each strand in layout order:
 *
 *  - ORF entries and LRF banks stay within the configured capacity,
 *    and no entry holds two live values at once;
 *  - every upper-level read hits an entry that a preceding in-strand
 *    write (or read-operand deposit) bound to that register;
 *  - every value written to the ORF/LRF is consumed within its strand
 *    (before the entry is rebound and before the strand ends);
 *  - LRF traffic stays on the private-ALU datapath, and wide values
 *    never enter the LRF;
 *  - a definition may skip the MRF only when its value cannot be live
 *    out of its strand (checked against the global liveness);
 *  - the end-of-strand bit marks exactly the last instruction of each
 *    strand.
 *
 * @param sites_checked optional out-parameter: number of annotation
 *        sites examined.
 * @return one message per violation; empty when the allocation is
 *         invariant-clean.
 */
std::vector<std::string> checkAllocationInvariants(
    const Kernel &k, const AllocOptions &opts,
    const AnalysisBundle &analyses, int *sites_checked = nullptr);

/**
 * Describe the first difference between two access-count sets, e.g.
 * "reads[ORF][shared]: 120 vs 121"; empty when identical.
 */
std::string describeCountsDiff(const AccessCounts &a,
                               const AccessCounts &b);

} // namespace rfh

#endif // RFH_VERIFY_ORACLE_H
