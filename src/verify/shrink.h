/**
 * @file
 * Delta-debugging reducer for failing RPTX kernels.
 *
 * Given a kernel and a failure predicate (typically "the differential
 * oracle reports a finding"), the reducer searches for a smaller
 * kernel on which the predicate still holds, using four
 * transformation families:
 *
 *  - drop whole basic blocks (branches retarget to the following
 *    block, mirroring fallthrough);
 *  - drop contiguous instruction ranges, ddmin-style with shrinking
 *    chunk sizes (blocks emptied by a drop are removed);
 *  - shrink immediates toward 1 (halving loop trip counts and
 *    offsets);
 *  - demote operands (register source -> immediate, drop predicates,
 *    clear the wide bit).
 *
 * Every candidate must satisfy Kernel::validate() == "" before the
 * predicate is consulted, so the reducer can never escape the space
 * of well-formed kernels. The result is written as a plain-text
 * .rptx repro artifact that parses back with parseKernel.
 */

#ifndef RFH_VERIFY_SHRINK_H
#define RFH_VERIFY_SHRINK_H

#include <functional>
#include <string>

#include "ir/kernel.h"

namespace rfh {

/** Returns true when the kernel still exhibits the failure. */
using FailurePredicate = std::function<bool(const Kernel &)>;

/** Reducer limits. */
struct ShrinkOptions
{
    /** Maximum full passes over all transformation families. */
    int maxRounds = 24;
    /** Hard cap on predicate evaluations. */
    int maxCandidates = 4000;
};

/** Outcome of a reduction. */
struct ShrinkResult
{
    /** The smallest failing kernel found (finalized). */
    Kernel kernel;
    int originalInstrs = 0;
    int finalInstrs = 0;
    /** Candidate kernels whose predicate was evaluated. */
    int candidatesTried = 0;
    /** Full passes executed before the fixpoint. */
    int rounds = 0;
};

/**
 * Minimise @p k while @p fails holds. @p k itself must satisfy the
 * predicate (otherwise it is returned unchanged). Deterministic: the
 * candidate order is a pure function of the kernel.
 */
ShrinkResult shrinkKernel(const Kernel &k, const FailurePredicate &fails,
                          const ShrinkOptions &opts = {});

/**
 * Write @p k to @p path as canonical RPTX text (a parseKernel-able
 * repro artifact). @return false when the file cannot be written.
 */
bool writeReproArtifact(const Kernel &k, const std::string &path);

} // namespace rfh

#endif // RFH_VERIFY_SHRINK_H
