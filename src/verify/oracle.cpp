#include "verify/oracle.h"

#include <sstream>

#include "compiler/allocator.h"
#include "compiler/strand.h"
#include "core/experiment.h"
#include "core/json.h"
#include "core/memo.h"
#include "core/scheme.h"
#include "ir/liveness.h"
#include "sim/sw_exec.h"
#include "sim/sw_exec_simt.h"
#include "sim/trace.h"

namespace rfh {

namespace {

/** First byte where two JSON documents differ, with context. */
std::string
describeJsonDiff(const std::string &a, const std::string &b)
{
    std::size_t n = std::min(a.size(), b.size());
    std::size_t i = 0;
    while (i < n && a[i] == b[i])
        i++;
    if (i == a.size() && i == b.size())
        return "";
    std::size_t from = i > 30 ? i - 30 : 0;
    std::ostringstream os;
    os << "JSON differs at byte " << i << ": ..."
       << a.substr(from, 60) << "... vs ..." << b.substr(from, 60)
       << "...";
    return os.str();
}

ExperimentConfig
configFor(Scheme scheme, const OracleOptions &opts, ExecEngine engine)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.entries = opts.entries;
    cfg.engine = engine;
    return cfg;
}

void
applyPerturbation(OraclePerturb perturb, AccessCounts &counts)
{
    switch (perturb) {
      case OraclePerturb::NONE:
        break;
      case OraclePerturb::EXTRA_MRF_READ:
        counts.read(Level::MRF, Datapath::PRIVATE);
        break;
      case OraclePerturb::DROP_ORF_WRITE:
        if (counts.writes[static_cast<int>(Level::ORF)][0] > 0)
            counts.writes[static_cast<int>(Level::ORF)][0]--;
        else
            counts.write(Level::ORF, Datapath::PRIVATE);
        break;
    }
}

/** Binding state of one physical upper-level entry during the walk. */
struct Bind
{
    bool valid = false;
    Reg reg = 0;
    bool consumed = false;
    int defLin = -1;
    /**
     * The binding must be read before it dies. Only read-operand
     * deposits qualify: a deposit exists solely to feed later ORF
     * reads of the same instance, and the entry timeline holds the
     * entry until that happens. Definition writes cannot carry this
     * obligation — a dead value parks upper-level-only to elide its
     * MRF write, and a hammock-group member can share the group's
     * entry (and its MRF copy) while its own reads are MRF-pinned.
     */
    bool mustConsume = false;
};

} // namespace

std::string_view
findingKindName(FindingKind kind)
{
    switch (kind) {
      case FindingKind::EXEC_ERROR: return "exec-error";
      case FindingKind::DISCREPANCY: return "discrepancy";
      case FindingKind::INVARIANT: return "invariant";
    }
    return "?";
}

std::string
OracleReport::summary() const
{
    std::ostringstream os;
    if (truncated)
        return "oracle skipped: execution truncated by the "
               "instruction cap";
    if (ok()) {
        os << "oracle OK: " << pairsChecked << " pairs, "
           << invariantSites << " invariant sites";
        return os.str();
    }
    os << findings.size() << " finding(s):";
    for (const OracleFinding &f : findings)
        os << "\n  [" << findingKindName(f.kind) << "] " << f.check
           << ": " << f.detail;
    return os.str();
}

std::string
describeCountsDiff(const AccessCounts &a, const AccessCounts &b)
{
    static const char *kLevels[] = {"MRF", "ORF", "LRF"};
    static const char *kPaths[] = {"private", "shared"};
    std::ostringstream os;
    for (int l = 0; l < 3; l++) {
        for (int d = 0; d < 2; d++) {
            if (a.reads[l][d] != b.reads[l][d]) {
                os << "reads[" << kLevels[l] << "][" << kPaths[d]
                   << "]: " << a.reads[l][d] << " vs " << b.reads[l][d];
                return os.str();
            }
            if (a.writes[l][d] != b.writes[l][d]) {
                os << "writes[" << kLevels[l] << "][" << kPaths[d]
                   << "]: " << a.writes[l][d] << " vs "
                   << b.writes[l][d];
                return os.str();
            }
        }
    }
    if (a.wbReads != b.wbReads)
        return "wbReads: " + std::to_string(a.wbReads) + " vs " +
            std::to_string(b.wbReads);
    if (a.wbWrites != b.wbWrites)
        return "wbWrites: " + std::to_string(a.wbWrites) + " vs " +
            std::to_string(b.wbWrites);
    if (a.instructions != b.instructions)
        return "instructions: " + std::to_string(a.instructions) +
            " vs " + std::to_string(b.instructions);
    if (a.deschedules != b.deschedules)
        return "deschedules: " + std::to_string(a.deschedules) +
            " vs " + std::to_string(b.deschedules);
    return "";
}

std::vector<std::string>
checkAllocationInvariants(const Kernel &k, const AllocOptions &opts,
                          const AnalysisBundle &analyses,
                          int *sites_checked)
{
    std::vector<std::string> violations;
    int sites = 0;
    const int lrf_banks = opts.useLRF ? (opts.splitLRF ? 3 : 1) : 0;
    StrandAnalysis strands(k, analyses.cfg, opts.strandOptions);

    auto violate = [&](int lin, const std::string &msg) {
        violations.push_back("@lin " + std::to_string(lin) + ": " + msg);
    };

    for (int s = 0; s < strands.numStrands(); s++) {
        const Strand &st = strands.strand(s);
        std::vector<Bind> orf(opts.orfEntries);
        std::vector<Bind> lrf(lrf_banks);

        for (int lin = st.firstLin; lin <= st.lastLin; lin++) {
            const Instruction &in = k.instr(lin);
            const bool shared = isSharedUnit(in.unit());

            // End-of-strand bit: exactly the last instruction.
            bool wantEos = lin == st.lastLin;
            if (in.endOfStrand != wantEos)
                violate(lin, wantEos
                        ? "strand " + std::to_string(s) +
                          " ends without the end-of-strand bit"
                        : "end-of-strand bit set mid-strand");

            // ---- Reads ----
            std::vector<std::pair<int, Reg>> deposits;
            auto check_read = [&](Reg r, const ReadAnnotation &ra) {
                sites++;
                switch (ra.level) {
                  case Level::MRF:
                    if (ra.depositToORF) {
                        if (ra.entry >=
                            static_cast<std::uint8_t>(opts.orfEntries)) {
                            violate(lin, "deposit to ORF entry " +
                                    std::to_string(ra.entry) +
                                    " exceeds capacity " +
                                    std::to_string(opts.orfEntries));
                            return;
                        }
                        deposits.emplace_back(ra.entry, r);
                    }
                    break;
                  case Level::ORF: {
                    if (ra.depositToORF) {
                        violate(lin, "deposit annotation on a non-MRF "
                                "read");
                        return;
                    }
                    if (ra.entry >=
                        static_cast<std::uint8_t>(opts.orfEntries)) {
                        violate(lin, "read from ORF entry " +
                                std::to_string(ra.entry) +
                                " exceeds capacity " +
                                std::to_string(opts.orfEntries));
                        return;
                    }
                    Bind &b = orf[ra.entry];
                    if (!b.valid || b.reg != r) {
                        violate(lin, "read of R" + std::to_string(r) +
                                " from ORF entry " +
                                std::to_string(ra.entry) +
                                " which holds " +
                                (b.valid ? "R" + std::to_string(b.reg)
                                         : std::string("nothing")));
                        return;
                    }
                    b.consumed = true;
                    break;
                  }
                  case Level::LRF: {
                    if (shared) {
                        violate(lin, "LRF read on the shared datapath");
                        return;
                    }
                    if (lrf_banks == 0 ||
                        ra.lrfBank >=
                            static_cast<std::uint8_t>(lrf_banks)) {
                        violate(lin, "read from LRF bank " +
                                std::to_string(ra.lrfBank) +
                                " exceeds capacity " +
                                std::to_string(lrf_banks));
                        return;
                    }
                    Bind &b = lrf[ra.lrfBank];
                    if (!b.valid || b.reg != r) {
                        violate(lin, "read of R" + std::to_string(r) +
                                " from LRF bank " +
                                std::to_string(ra.lrfBank) +
                                " which holds " +
                                (b.valid ? "R" + std::to_string(b.reg)
                                         : std::string("nothing")));
                        return;
                    }
                    b.consumed = true;
                    break;
                  }
                }
            };
            for (int slot = 0; slot < in.numSrcs; slot++)
                if (in.srcs[slot].isReg)
                    check_read(in.srcs[slot].reg, in.readAnno[slot]);
            if (in.pred)
                check_read(*in.pred, in.predAnno);
            for (auto [entry, r] : deposits) {
                Bind &b = orf[entry];
                if (b.valid && !b.consumed && b.mustConsume &&
                    b.reg != r)
                    violate(lin, "deposit rebinds ORF entry " +
                            std::to_string(entry) + " while R" +
                            std::to_string(b.reg) + " (def @lin " +
                            std::to_string(b.defLin) +
                            ") was never read from it");
                b.valid = true;
                b.reg = r;
                b.consumed = false;
                b.defLin = lin;
                b.mustConsume = true;
            }

            // ---- Writes ----
            if (!in.dst)
                continue;
            const WriteAnnotation &wa = in.writeAnno;
            sites++;
            if (!wa.toMRF && !wa.toORF && !wa.toLRF) {
                violate(lin, "definition written to no level at all");
                continue;
            }
            if (wa.toORF && wa.toLRF)
                violate(lin, "value written to both ORF and LRF");
            if (in.longLatency() && wa.anyUpper() &&
                opts.strandOptions.cutAtLongLatency)
                violate(lin,
                        "long-latency result annotated to an upper "
                        "level");
            if (wa.toLRF) {
                if (in.wide) {
                    violate(lin, "wide value written to the LRF");
                } else if (shared && !opts.lrfAllowSharedProducers) {
                    violate(lin, "shared-datapath producer written to "
                            "the LRF");
                } else if (lrf_banks == 0 ||
                           wa.lrfBank >=
                               static_cast<std::uint8_t>(lrf_banks)) {
                    violate(lin, "write to LRF bank " +
                            std::to_string(wa.lrfBank) +
                            " exceeds capacity " +
                            std::to_string(lrf_banks));
                } else {
                    Bind &b = lrf[wa.lrfBank];
                    // Rebinding to the same register is a hammock-group
                    // refresh; a different register evicts, which is
                    // only legal once any must-read value has been
                    // read.
                    if (b.valid && !b.consumed && b.mustConsume &&
                        b.reg != *in.dst)
                        violate(lin, "LRF bank " +
                                std::to_string(wa.lrfBank) +
                                " rebound while R" +
                                std::to_string(b.reg) + " (def @lin " +
                                std::to_string(b.defLin) +
                                ") was never read from it");
                    b.valid = true;
                    b.reg = *in.dst;
                    b.consumed = false;
                    b.defLin = lin;
                    b.mustConsume = false;
                }
            }
            if (wa.toORF) {
                int halves = in.wide ? 2 : 1;
                for (int h = 0; h < halves; h++) {
                    int entry = wa.orfEntry + h;
                    if (entry >= opts.orfEntries) {
                        violate(lin, "write to ORF entry " +
                                std::to_string(entry) +
                                " exceeds capacity " +
                                std::to_string(opts.orfEntries));
                        continue;
                    }
                    Bind &b = orf[entry];
                    Reg r = static_cast<Reg>(*in.dst + h);
                    if (b.valid && !b.consumed && b.mustConsume &&
                        b.reg != r)
                        violate(lin, "ORF entry " +
                                std::to_string(entry) +
                                " rebound while R" +
                                std::to_string(b.reg) + " (def @lin " +
                                std::to_string(b.defLin) +
                                ") was never read from it");
                    b.valid = true;
                    b.reg = r;
                    b.consumed = false;
                    b.defLin = lin;
                    b.mustConsume = false;
                }
            }
            if (!wa.toMRF) {
                // MRF elision is only sound when no actual read of
                // this definition happens outside the strand: upper
                // levels flush at strand crossings, so such a read
                // could only be served by the MRF. Reaching defs give
                // exactly this definition's reachable use sites —
                // unlike liveness, whose merge semantics mark the
                // destination of a later *predicated* redefinition as
                // a use even though a predicated-off instruction
                // performs no read. A use earlier in the strand than
                // the def is a read reached around a backward edge,
                // which also leaves the strand (backward branches cut
                // strands).
                int halves = in.wide ? 2 : 1;
                for (int h = 0; h < halves; h++) {
                    Reg r = static_cast<Reg>(*in.dst + h);
                    bool read_outside = false;
                    for (DefId g : analyses.reachingDefs.defsAt(lin)) {
                        if (analyses.reachingDefs.defReg(g) != r)
                            continue;
                        for (const UseSite &u :
                             analyses.reachingDefs.uses(g))
                            if (u.lin <= lin || u.lin > st.lastLin)
                                read_outside = true;
                    }
                    if (read_outside)
                        violate(lin, "MRF write of R" +
                                std::to_string(r) +
                                " elided although the value is read "
                                "outside strand " + std::to_string(s));
                }
            }
        }

        // ---- Strand end: every upper-level value must be consumed ----
        for (int e = 0; e < static_cast<int>(orf.size()); e++)
            if (orf[e].valid && !orf[e].consumed &&
                orf[e].mustConsume)
                violate(st.lastLin, "R" + std::to_string(orf[e].reg) +
                        " (def @lin " + std::to_string(orf[e].defLin) +
                        ") written to ORF entry " + std::to_string(e) +
                        " but never read before the end of strand " +
                        std::to_string(s));
        for (int bank = 0; bank < static_cast<int>(lrf.size()); bank++)
            if (lrf[bank].valid && !lrf[bank].consumed &&
                lrf[bank].mustConsume)
                violate(st.lastLin, "R" +
                        std::to_string(lrf[bank].reg) + " (def @lin " +
                        std::to_string(lrf[bank].defLin) +
                        ") written to LRF bank " +
                        std::to_string(bank) +
                        " but never read before the end of strand " +
                        std::to_string(s));
    }

    if (sites_checked)
        *sites_checked = sites;
    return violations;
}

OracleReport
runOracle(const Kernel &k, const OracleOptions &opts)
{
    OracleReport report;
    auto finding = [&](FindingKind kind, std::string check,
                       std::string detail) {
        report.findings.push_back(
            {kind, std::move(check), std::move(detail)});
    };

    Workload w;
    w.name = k.name;
    w.suite = "fuzz";
    w.kernel = k;
    w.run = opts.run;

    // A kernel that hits the per-warp instruction cap is truncated:
    // the engines cut the dynamic stream at slightly different
    // points, so counts are not comparable and there is no verdict.
    // Generated fuzz kernels always terminate; a shrink candidate
    // whose loop exit got demoted away lands here and is rejected as
    // "not failing" rather than producing a bogus repro.
    if (runBaseline(k, opts.run).instructions >=
        opts.run.maxInstrsPerWarp) {
        report.truncated = true;
        return report;
    }

    // ---- Direct vs replay for every registered scheme ----
    // The registry enumerates in registration order, which keeps the
    // paper schemes in their historic sequence (base, hw2, hw3, sw2,
    // sw3) ahead of the contributed backends. New backends join the
    // sweep automatically the moment they register.
    AccessCounts baselineCounts;
    std::vector<std::pair<const SchemeInfo *, AccessCounts>>
        directCounts;
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        if (si->caps.hwManaged && !opts.checkHwSchemes)
            continue;
        std::string tag(si->tag);
        RunOutcome direct = runScheme(
            w, configFor(si->scheme, opts, ExecEngine::DIRECT));
        RunOutcome replay = runScheme(
            w, configFor(si->scheme, opts, ExecEngine::REPLAY));
        if (si->scheme == Scheme::BASELINE)
            baselineCounts = direct.counts;
        if (!direct.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/direct",
                    direct.error);
        if (!replay.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/replay",
                    replay.error);
        if (si->scheme == Scheme::SW_THREE_LEVEL)
            applyPerturbation(opts.perturb, replay.counts);
        std::string diff = describeJsonDiff(outcomeToJson(direct),
                                            outcomeToJson(replay));
        if (!diff.empty())
            finding(FindingKind::DISCREPANCY,
                    tag + "/direct-vs-replay", diff);
        report.pairsChecked++;
        directCounts.emplace_back(si, direct.counts);
    }

    // ---- Pipeline vs functional for every pipelined scheme ----
    // The cycle-level pipeline accounts accesses at issue
    // (sim/pipeline_account.h), so its totals must equal the
    // functional path's exactly — for any scheduler interleaving.
    // Compressed latencies keep the fuzz battery fast; counts are
    // timing-invariant by construction, which is exactly the property
    // under test.
    PipelineConfig pcfg;
    pcfg.aluLatency = 2;
    pcfg.sfuLatency = 3;
    pcfg.sharedMemLatency = 3;
    pcfg.texLatency = 6;
    pcfg.dramLatency = 6;
    for (const auto &[si, counts] : directCounts) {
        if (!si->caps.pipelined)
            continue;
        std::string tag(si->tag);
        SchemePipelineResult pr = runSchemePipeline(
            w, configFor(si->scheme, opts, ExecEngine::REPLAY), pcfg);
        if (!pr.ok()) {
            finding(FindingKind::EXEC_ERROR, tag + "/pipeline",
                    pr.error);
            report.pairsChecked++;
            continue;
        }
        std::string diff = describeCountsDiff(pr.counts, counts);
        if (!diff.empty())
            finding(FindingKind::DISCREPANCY,
                    tag + "/pipeline-vs-functional", diff);
        report.pairsChecked++;
    }

    // ---- Per-backend conservation against the flat baseline ----
    // Allocator-based schemes run their conservation check below on
    // the freshly annotated kernel; everything else checks the direct
    // counts from the differential sweep here.
    for (const auto &[si, counts] : directCounts) {
        if (si->caps.usesAllocator || si->scheme == Scheme::BASELINE)
            continue;
        for (const std::string &v :
             si->backend->checkConservation(counts, baselineCounts))
            finding(FindingKind::INVARIANT,
                    std::string(si->tag) + "/conservation", v);
        report.pairsChecked++;
    }

    // ---- Software schemes: invariants, conservation, SIMT pairs ----
    auto bundle = globalExperimentCache().analyses(k);
    for (const SchemeInfo *si : SchemeRegistry::instance().schemes()) {
        if (!si->caps.usesAllocator)
            continue;
        const Scheme scheme = si->scheme;
        std::string tag(si->tag);
        ExperimentConfig cfg = configFor(scheme, opts, ExecEngine::AUTO);
        AllocOptions ao = cfg.allocOptions();
        Kernel annotated = k;
        HierarchyAllocator(cfg.energy, ao).run(annotated, bundle.get());

        int sites = 0;
        for (const std::string &v : checkAllocationInvariants(
                 annotated, ao, *bundle, &sites))
            finding(FindingKind::INVARIANT, tag + "/invariants", v);
        report.invariantSites += sites;

        SwExecConfig sc;
        sc.run = opts.run;
        SwExecResult scalar =
            runSwHierarchy(annotated, ao, sc, bundle.get());
        if (!scalar.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/scalar",
                    scalar.error);

        // Dynamic conservation against the flat MRF, as defined by
        // the backend (for the paper's software hierarchy: every
        // register operand read is serviced at exactly one level,
        // every enabled definition lands in at least one level, and
        // the MRF sees no more writes than the baseline).
        for (const std::string &v : si->backend->checkConservation(
                 scalar.counts, baselineCounts))
            finding(FindingKind::INVARIANT, tag + "/conservation", v);
        report.pairsChecked++;

        if (!opts.checkSimt)
            continue;

        // Scalar vs SIMT at width 1: identical seeding, identical
        // paths, identical warp-level counts.
        SimtExecConfig width1;
        width1.numWarps = opts.run.numWarps;
        width1.width = 1;
        width1.maxInstrsPerWarp = opts.run.maxInstrsPerWarp;
        SwExecResult simt1 = runSwHierarchySimt(annotated, ao, width1);
        if (!simt1.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/simt-w1",
                    simt1.error);
        std::string diff1 = describeCountsDiff(scalar.counts,
                                               simt1.counts);
        if (!diff1.empty())
            finding(FindingKind::DISCREPANCY,
                    tag + "/scalar-vs-simt-w1", diff1);
        report.pairsChecked++;

        // SIMT direct vs SIMT replay at full width.
        SimtExecConfig wide;
        wide.numWarps = opts.run.numWarps;
        wide.width = opts.simtWidth;
        wide.maxInstrsPerWarp = opts.run.maxInstrsPerWarp;
        SwExecResult simtD = runSwHierarchySimt(annotated, ao, wide);
        DecodedTrace trace = recordSimtDecodedTrace(
            k, wide.numWarps, wide.width, wide.maxInstrsPerWarp);
        SwExecResult simtR =
            replaySwHierarchySimt(annotated, ao, trace, wide);
        if (!simtD.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/simt-direct",
                    simtD.error);
        if (!simtR.ok())
            finding(FindingKind::EXEC_ERROR, tag + "/simt-replay",
                    simtR.error);
        std::string diffW = describeCountsDiff(simtD.counts,
                                               simtR.counts);
        if (!diffW.empty())
            finding(FindingKind::DISCREPANCY,
                    tag + "/simt-direct-vs-replay", diffW);
        report.pairsChecked++;
    }

    return report;
}

} // namespace rfh
