#include "verify/shrink.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <vector>

#include "ir/printer.h"

namespace rfh {

namespace {

/**
 * Rebuild @p k without the blocks marked in @p remove. Branches to a
 * removed block retarget to the next surviving block (the fallthrough
 * continuation); returns nullopt when a branch would point past the
 * end.
 */
std::optional<Kernel>
removeBlocks(const Kernel &k, const std::vector<bool> &remove)
{
    int n = static_cast<int>(k.blocks.size());
    std::vector<int> redirect(n, -1);
    int kept = 0;
    for (int i = 0; i < n; i++)
        if (!remove[i])
            redirect[i] = kept++;
    if (kept == 0)
        return std::nullopt;
    // A removed block redirects to the first surviving block at or
    // after it.
    std::vector<int> target(n, -1);
    int next = -1;
    for (int i = n - 1; i >= 0; i--) {
        if (!remove[i])
            next = redirect[i];
        target[i] = next;
    }

    Kernel out;
    out.name = k.name;
    for (int i = 0; i < n; i++) {
        if (remove[i])
            continue;
        BasicBlock bb = k.blocks[i];
        for (Instruction &in : bb.instrs) {
            if (in.branchTarget < 0)
                continue;
            if (in.branchTarget >= n || target[in.branchTarget] < 0)
                return std::nullopt;
            in.branchTarget = target[in.branchTarget];
        }
        out.blocks.push_back(std::move(bb));
    }
    out.finalize();
    return out;
}

/**
 * Rebuild @p k without linear instructions [begin, begin+count);
 * blocks emptied by the drop are removed with retargeting.
 */
std::optional<Kernel>
dropInstrRange(const Kernel &k, int begin, int count)
{
    Kernel pruned;
    pruned.name = k.name;
    std::vector<bool> empty;
    int lin = 0;
    for (const BasicBlock &bb : k.blocks) {
        BasicBlock nb;
        nb.label = bb.label;
        for (const Instruction &in : bb.instrs) {
            bool drop = lin >= begin && lin < begin + count;
            lin++;
            if (!drop)
                nb.instrs.push_back(in);
        }
        empty.push_back(nb.instrs.empty());
        pruned.blocks.push_back(std::move(nb));
    }
    pruned.finalize();
    if (std::none_of(empty.begin(), empty.end(),
                     [](bool e) { return e; }))
        return pruned;
    return removeBlocks(pruned, empty);
}

/** True when @p candidate is well formed and still failing. */
bool
accept(const std::optional<Kernel> &candidate,
       const FailurePredicate &fails, ShrinkResult &result,
       const ShrinkOptions &opts)
{
    if (!candidate || !candidate->validate().empty())
        return false;
    if (result.candidatesTried >= opts.maxCandidates)
        return false;
    result.candidatesTried++;
    return fails(*candidate);
}

} // namespace

ShrinkResult
shrinkKernel(const Kernel &k, const FailurePredicate &fails,
             const ShrinkOptions &opts)
{
    ShrinkResult result;
    result.kernel = k;
    result.kernel.finalize();
    result.originalInstrs = result.kernel.numInstrs();
    result.finalInstrs = result.originalInstrs;

    bool progress = true;
    while (progress && result.rounds < opts.maxRounds &&
           result.candidatesTried < opts.maxCandidates) {
        progress = false;
        result.rounds++;
        Kernel &cur = result.kernel;

        // ---- Drop whole blocks ----
        for (int b = 0; b < static_cast<int>(cur.blocks.size()); b++) {
            std::vector<bool> remove(cur.blocks.size(), false);
            remove[b] = true;
            auto cand = removeBlocks(cur, remove);
            if (accept(cand, fails, result, opts)) {
                cur = std::move(*cand);
                progress = true;
                b = -1;  // restart over the smaller kernel
            }
        }

        // ---- Drop instruction ranges, ddmin-style ----
        for (int chunk = std::max(1, cur.numInstrs() / 2); chunk >= 1;
             chunk /= 2) {
            for (int begin = 0; begin + chunk <= cur.numInstrs();
                 begin += chunk) {
                auto cand = dropInstrRange(cur, begin, chunk);
                if (accept(cand, fails, result, opts)) {
                    cur = std::move(*cand);
                    progress = true;
                    begin -= chunk;  // retry the same position
                }
            }
            if (chunk == 1)
                break;
        }

        // ---- Shrink immediates toward 1 ----
        for (int lin = 0; lin < cur.numInstrs(); lin++) {
            const Instruction &in = cur.instr(lin);
            for (int s = 0; s < in.numSrcs; s++) {
                std::uint32_t imm = cur.instr(lin).srcs[s].imm;
                if (cur.instr(lin).srcs[s].isReg || imm <= 1)
                    continue;
                for (std::uint32_t smaller :
                     {std::uint32_t{1}, imm / 2}) {
                    if (smaller >= imm || smaller == 0)
                        continue;
                    Kernel cand = cur;
                    cand.instr(lin).srcs[s].imm = smaller;
                    if (accept(cand, fails, result, opts)) {
                        cur = std::move(cand);
                        progress = true;
                        break;
                    }
                }
            }
            if (cur.instr(lin).memOffset > 0) {
                Kernel cand = cur;
                cand.instr(lin).memOffset = 0;
                if (accept(cand, fails, result, opts)) {
                    cur = std::move(cand);
                    progress = true;
                }
            }
        }

        // ---- Demote operands ----
        for (int lin = 0; lin < cur.numInstrs(); lin++) {
            // Register source -> immediate (severs a dataflow edge).
            // Memory/texture operands must stay registers to keep the
            // candidate printable and parseable.
            UnitClass uc = cur.instr(lin).unit();
            bool mem = uc == UnitClass::MEM || uc == UnitClass::TEX;
            for (int s = 0; s < cur.instr(lin).numSrcs && !mem; s++) {
                if (!cur.instr(lin).srcs[s].isReg)
                    continue;
                Kernel cand = cur;
                cand.instr(lin).srcs[s] = SrcOperand::makeImm(1);
                if (accept(cand, fails, result, opts)) {
                    cur = std::move(cand);
                    progress = true;
                }
            }
            if (cur.instr(lin).pred &&
                cur.instr(lin).op != Opcode::BRA) {
                Kernel cand = cur;
                cand.instr(lin).pred.reset();
                if (accept(cand, fails, result, opts)) {
                    cur = std::move(cand);
                    progress = true;
                }
            }
            if (cur.instr(lin).wide) {
                Kernel cand = cur;
                cand.instr(lin).wide = false;
                if (accept(cand, fails, result, opts)) {
                    cur = std::move(cand);
                    progress = true;
                }
            }
        }
    }

    result.kernel.finalize();
    result.finalInstrs = result.kernel.numInstrs();
    return result;
}

bool
writeReproArtifact(const Kernel &k, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << printKernel(k);
    return static_cast<bool>(out);
}

} // namespace rfh
