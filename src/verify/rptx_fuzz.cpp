#include "verify/rptx_fuzz.h"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

namespace rfh {

namespace {

/** splitmix64: the same deterministic RNG the synthetic generator uses. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL)
    {
    }

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    int
    range(int n)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(n));
    }

    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

// Reserved registers. The fuzzer's termination argument rests on body
// code never writing a loop counter: general-purpose destinations are
// drawn strictly below kReservedBase.
constexpr Reg kTid = 0;         // thread id (seeded by the machine)
constexpr Reg kParam = 63;      // parameter base (seeded)
constexpr Reg kCounter0 = 62;   // outer loop counter
constexpr Reg kCounter1 = 61;   // inner loop counter
constexpr Reg kPredScratch = 60; // branch/store predicates
constexpr Reg kAddr0 = 59;      // global address
constexpr Reg kAddr1 = 58;      // shared address
constexpr Reg kAddr2 = 57;      // secondary global address
constexpr Reg kAcc = 56;        // accumulator consumed by the epilogue
constexpr int kReservedBase = 56;

constexpr Opcode kAlu2Ops[] = {
    Opcode::IADD, Opcode::ISUB, Opcode::IMUL, Opcode::IMIN, Opcode::IMAX,
    Opcode::AND,  Opcode::OR,   Opcode::XOR,  Opcode::SHL,  Opcode::SHR,
    Opcode::FADD, Opcode::FSUB, Opcode::FMUL, Opcode::FMIN, Opcode::FMAX,
    Opcode::SETLT, Opcode::SETLE, Opcode::SETEQ, Opcode::SETNE,
    Opcode::SETGT, Opcode::SETGE,
};
constexpr Opcode kAlu3Ops[] = {
    Opcode::FFMA, Opcode::IMAD, Opcode::SEL,
};
constexpr Opcode kUnaryOps[] = {
    Opcode::MOV, Opcode::CVT, Opcode::NOT,
};
constexpr Opcode kSfuOps[] = {
    Opcode::RCP, Opcode::SQRT, Opcode::RSQRT, Opcode::SIN, Opcode::COS,
    Opcode::LG2, Opcode::EX2,
};

/** Emitter: wraps KernelBuilder with fixups, budget, and a value pool. */
class FuzzEmitter
{
  public:
    FuzzEmitter(const std::string &name, const FuzzParams &p)
        : p_(p), rng_(p.seed), b_(name), budget_(p.maxInstrs)
    {
        poolLimit_ = p.highPressure ? kReservedBase : 24;
    }

    Kernel
    run()
    {
        curBlock_ = b_.block("entry");
        curCount_ = 0;
        prologue();
        emitRegion(p_.maxLoopDepth, p_.maxHammockDepth);
        epilogue();
        Kernel k = b_.take();
        for (const Fixup &fx : fixups_)
            k.blocks[fx.block].instrs[fx.instr].branchTarget =
                tagBlock_.at(fx.tag);
        k.finalize();
        return k;
    }

  private:
    struct Fixup
    {
        int block;
        int instr;
        int tag;
    };

    void
    emit(Instruction in)
    {
        b_.add(in);
        curCount_++;
        budget_--;
    }

    int
    newBlock()
    {
        // Kernel::validate() rejects empty blocks; pad before closing.
        if (curCount_ == 0)
            emit(makeALU(Opcode::IADD, poolReg(),
                         SrcOperand::makeReg(kTid),
                         SrcOperand::makeImm(imm())));
        curBlock_ = b_.block("L" + std::to_string(labelId_++));
        curCount_ = 0;
        return curBlock_;
    }

    /** Emit a conditional branch to a not-yet-created block. */
    void
    emitBranchToTag(int tag, bool predicated)
    {
        Instruction br = predicated ? makeCondBranch(kPredScratch, -1)
                                    : makeBranch(-1);
        fixups_.push_back({curBlock_, curCount_, tag});
        emit(br);
    }

    /** Bind @p tag to a freshly started block. */
    int
    bindTag(int tag)
    {
        int blk = newBlock();
        tagBlock_[tag] = blk;
        return blk;
    }

    // ---- Operand sampling ----

    Reg
    poolReg()
    {
        return static_cast<Reg>(1 + rng_.range(poolLimit_ - 1));
    }

    std::uint32_t
    imm()
    {
        // Small immediates keep shift counts and addresses tame.
        return static_cast<std::uint32_t>(1 + rng_.range(0xff));
    }

    /** A source register, biased toward recently defined values. */
    Reg
    recentReg()
    {
        if (recent_.empty() || rng_.chance(0.25))
            return poolReg();
        int idx = 0;
        int limit = static_cast<int>(recent_.size());
        while (idx + 1 < limit && rng_.chance(0.5))
            idx++;
        return recent_[idx];
    }

    SrcOperand
    src()
    {
        if (rng_.chance(0.2))
            return SrcOperand::makeImm(imm());
        return SrcOperand::makeReg(recentReg());
    }

    void
    defined(Reg r)
    {
        recent_.push_front(r);
        if (recent_.size() > 12)
            recent_.pop_back();
    }

    /** Write a predicate into the scratch register and return it. */
    Reg
    emitPredicate()
    {
        emit(makeALU(Opcode::SETLT, kPredScratch,
                     SrcOperand::makeReg(recentReg()),
                     SrcOperand::makeImm(
                         static_cast<std::uint32_t>(rng_.next() >> 33))));
        return kPredScratch;
    }

    // ---- Structural features ----

    void
    prologue()
    {
        emit(makeLoad(Opcode::LD_PARAM, kAddr0, kParam));
        emit(makeALU(Opcode::SHL, kAcc, SrcOperand::makeReg(kTid),
                     SrcOperand::makeImm(2)));
        emit(makeALU(Opcode::IADD, kAddr0, SrcOperand::makeReg(kAddr0),
                     SrcOperand::makeReg(kAcc)));
        emit(makeALU(Opcode::IADD, kAddr1, SrcOperand::makeReg(kAddr0),
                     SrcOperand::makeImm(64)));
        emit(makeALU(Opcode::XOR, kAddr2, SrcOperand::makeReg(kAddr1),
                     SrcOperand::makeImm(128)));
        emit(makeALU(Opcode::AND, kAcc, SrcOperand::makeReg(kAcc),
                     SrcOperand::makeImm(0)));
        defined(kAcc);
        straightRun(2 + rng_.range(3));
    }

    void
    epilogue()
    {
        // Consume the accumulator so it stays live throughout.
        emit(makeALU(Opcode::IADD, kAcc, SrcOperand::makeReg(kAcc),
                     SrcOperand::makeReg(recentReg())));
        emit(makeStore(Opcode::ST_GLOBAL, kAddr0, kAcc));
        emit(makeExit());
    }

    /**
     * One region: a run of feature segments. Loops and hammocks
     * recurse with decremented depth so nesting is bounded.
     */
    void
    emitRegion(int loopsLeft, int hammocksLeft)
    {
        int segments = 2 + rng_.range(4);
        for (int s = 0; s < segments && budget_ > 0; s++) {
            double u = rng_.uniform();
            if (loopsLeft > 0 && u < 0.22) {
                emitLoop(loopsLeft, hammocksLeft);
            } else if (hammocksLeft > 0 && u < 0.45) {
                emitHammock(loopsLeft, hammocksLeft);
            } else if (rng_.chance(p_.pForwardBranch) && u < 0.6) {
                emitForwardSkip(hammocksLeft);
            } else if (rng_.chance(p_.pDegenerateBlock) && u < 0.72) {
                emitDegenerateChain();
            } else if (u < 0.8) {
                emitLoadGroup();
            } else if (u < 0.9) {
                emitStoreGroup();
            } else {
                straightRun(3 + rng_.range(6));
            }
        }
        if (rng_.chance(p_.pSfuTail))
            emitSfuTail();
        // Fold something fresh into the live accumulator.
        emit(makeALU(Opcode::IADD, kAcc, SrcOperand::makeReg(kAcc),
                     SrcOperand::makeReg(recentReg())));
    }

    void
    straightRun(int n)
    {
        for (int i = 0; i < n && budget_ > 0; i++) {
            Reg dst = poolReg();
            double u = rng_.uniform();
            if (p_.allowWide && u < 0.07 &&
                static_cast<int>(dst) + 1 < poolLimit_) {
                Instruction w = makeALU(Opcode::IMUL, dst, src(), src());
                w.wide = true;
                emit(w);
                defined(dst);
                defined(static_cast<Reg>(dst + 1));
                continue;
            }
            if (u < 0.15) {
                Opcode op = kUnaryOps[rng_.range(std::size(kUnaryOps))];
                emit(makeUnary(op, dst, src()));
            } else if (u < 0.3) {
                Opcode op = kAlu3Ops[rng_.range(std::size(kAlu3Ops))];
                SrcOperand a = src(), b = src(), c = src();
                if (rng_.chance(p_.pDuplicateOperand))
                    c = a;  // duplicate-read operand
                emit(makeALU3(op, dst, a, b, c));
            } else if (u < 0.36) {
                // Predicated merge into an already-defined register
                // (PTX-style if-conversion).
                Reg pred = emitPredicate();
                Instruction alu = makeALU(
                    kAlu2Ops[rng_.range(std::size(kAlu2Ops))],
                    recent_.empty() ? dst : recent_.front(), src(), src());
                alu.pred = pred;
                dst = *alu.dst;
                emit(alu);
            } else {
                Opcode op = kAlu2Ops[rng_.range(std::size(kAlu2Ops))];
                SrcOperand a = src(), b = src();
                if (rng_.chance(p_.pDuplicateOperand) && a.isReg)
                    b = a;  // duplicate-read operand
                emit(makeALU(op, dst, a, b));
            }
            defined(dst);
        }
        if (rng_.chance(0.08)) {
            Instruction bar;
            bar.op = Opcode::BAR;
            emit(bar);
        }
    }

    void
    emitLoadGroup()
    {
        int n = 1 + rng_.range(3);
        for (int i = 0; i < n && budget_ > 0; i++) {
            Reg dst = poolReg();
            double u = rng_.uniform();
            std::uint32_t off = static_cast<std::uint32_t>(
                4 * rng_.range(16));
            if (p_.allowTex && u < 0.2)
                emit(makeLoad(Opcode::TEX, dst, kAddr2, off));
            else if (u < 0.45)
                emit(makeLoad(Opcode::LD_SHARED, dst, kAddr1, off));
            else if (u < 0.55)
                emit(makeLoad(Opcode::LD_PARAM, dst, kParam, off));
            else
                emit(makeLoad(Opcode::LD_GLOBAL, dst,
                              rng_.chance(0.5) ? kAddr0 : kAddr2, off));
            defined(dst);
        }
    }

    void
    emitStoreGroup()
    {
        int n = 1 + rng_.range(2);
        for (int i = 0; i < n && budget_ > 0; i++) {
            bool shared = rng_.chance(0.5);
            Instruction st = makeStore(
                shared ? Opcode::ST_SHARED : Opcode::ST_GLOBAL,
                shared ? kAddr1 : kAddr0, recentReg(),
                static_cast<std::uint32_t>(4 * rng_.range(8)));
            if (rng_.chance(p_.pPredicatedStore)) {
                st.pred = emitPredicate();  // predicated store
            }
            emit(st);
        }
    }

    void
    emitSfuTail()
    {
        int n = 2 + rng_.range(4);
        Reg chain = recentReg();
        for (int i = 0; i < n && budget_ > 0; i++) {
            Reg dst = poolReg();
            Opcode op = kSfuOps[rng_.range(std::size(kSfuOps))];
            emit(makeUnary(op, dst, SrcOperand::makeReg(chain)));
            defined(dst);
            chain = dst;
        }
    }

    /** A chain of one-instruction fall-through blocks. */
    void
    emitDegenerateChain()
    {
        int n = 1 + rng_.range(3);
        for (int i = 0; i < n; i++) {
            newBlock();
            Reg dst = poolReg();
            emit(makeALU(Opcode::IADD, dst, src(), src()));
            defined(dst);
        }
    }

    /**
     * Full or one-sided hammock. Full hammocks write the same
     * register on both sides (the Figure 10(c) merge-group shape) and
     * read it after the merge.
     */
    void
    emitHammock(int loopsLeft, int hammocksLeft)
    {
        Reg pred = emitPredicate();
        (void)pred;
        int tagSide = nextTag_++;
        int tagMerge = nextTag_++;
        bool oneSided = rng_.chance(0.35);
        emitBranchToTag(tagSide, /*predicated=*/true);
        newBlock();
        if (oneSided) {
            straightRun(2 + rng_.range(4));
            if (hammocksLeft > 1 && rng_.chance(0.4))
                emitHammock(loopsLeft, hammocksLeft - 1);
            bindTag(tagSide);
            tagBlock_[tagMerge] = tagBlock_[tagSide];
            return;
        }
        Reg merged = poolReg();
        // Then side.
        straightRun(1 + rng_.range(3));
        emit(makeALU(Opcode::IADD, merged,
                     SrcOperand::makeReg(recentReg()),
                     SrcOperand::makeImm(imm())));
        if (hammocksLeft > 1 && rng_.chance(0.35))
            emitHammock(loopsLeft, hammocksLeft - 1);
        emitBranchToTag(tagMerge, /*predicated=*/false);
        // Else side.
        bindTag(tagSide);
        straightRun(1 + rng_.range(3));
        emit(makeALU(Opcode::ISUB, merged,
                     SrcOperand::makeReg(recentReg()),
                     SrcOperand::makeImm(imm())));
        // Merge: consume the merged value.
        bindTag(tagMerge);
        defined(merged);
        emit(makeALU(Opcode::IADD, kAcc, SrcOperand::makeReg(kAcc),
                     SrcOperand::makeReg(merged)));
    }

    /**
     * Forward branch that skips over the next segment(s) and lands in
     * the middle of later straight-line code — the "branch into a
     * strand" shape the synthetic generator never produces.
     */
    void
    emitForwardSkip(int hammocksLeft)
    {
        emitPredicate();
        int tag = nextTag_++;
        emitBranchToTag(tag, /*predicated=*/true);
        newBlock();
        straightRun(2 + rng_.range(4));
        if (rng_.chance(0.3))
            emitLoadGroup();
        if (hammocksLeft > 0 && rng_.chance(0.25))
            emitHammock(0, hammocksLeft - 1);
        // The skip lands here, mid-region: code after the join reads
        // values defined both before the branch and on the fallthrough.
        bindTag(tag);
        straightRun(1 + rng_.range(3));
    }

    void
    emitLoop(int loopsLeft, int hammocksLeft)
    {
        Reg counter = loopsLeft == p_.maxLoopDepth ? kCounter0 : kCounter1;
        int iters = 1 + rng_.range(std::max(1, p_.maxLoopIters));
        emit(makeUnary(Opcode::MOV, counter,
                       SrcOperand::makeImm(
                           static_cast<std::uint32_t>(iters))));
        int head = newBlock();
        // Loop bodies may nest one level deeper but never write
        // `counter` (general destinations stay below kReservedBase),
        // so the countdown below is strictly monotonic: termination.
        emitRegion(loopsLeft - 1, hammocksLeft);
        if (curCount_ == 0)
            straightRun(1);
        emit(makeALU(Opcode::ISUB, counter, SrcOperand::makeReg(counter),
                     SrcOperand::makeImm(1)));
        emit(makeALU(Opcode::SETGT, kPredScratch,
                     SrcOperand::makeReg(counter),
                     SrcOperand::makeImm(0)));
        emit(makeCondBranch(kPredScratch, head));
        newBlock();
    }

    FuzzParams p_;
    Rng rng_;
    KernelBuilder b_;
    int budget_;
    int poolLimit_;
    int curBlock_ = 0;
    int curCount_ = 0;
    int labelId_ = 0;
    int nextTag_ = 0;
    std::deque<Reg> recent_;
    std::vector<Fixup> fixups_;
    std::map<int, int> tagBlock_;
};

} // namespace

Kernel
generateFuzzKernel(const std::string &name, const FuzzParams &params)
{
    FuzzEmitter em(name, params);
    return em.run();
}

FuzzParams
fuzzCase(std::uint64_t seed, std::uint64_t iter)
{
    // Mix seed and iteration into one stream so campaigns with
    // different seeds share no cases.
    std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL + iter;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;

    FuzzParams p;
    p.seed = h;
    p.maxInstrs = 40 + static_cast<int>(h % 100);
    // Cycle through structural extremes so short campaigns still hit
    // every grammar feature.
    switch (iter % 6) {
      case 0:  // loop-free, branch-heavy
        p.maxLoopDepth = 0;
        p.maxHammockDepth = 2;
        p.pForwardBranch = 0.6;
        break;
      case 1:  // deeply nested loops
        p.maxLoopDepth = 2;
        p.maxHammockDepth = 1;
        p.maxLoopIters = 3 + static_cast<int>(h % 5);
        break;
      case 2:  // high register pressure
        p.highPressure = true;
        p.maxLoopDepth = 1;
        break;
      case 3:  // SFU-heavy tails, texture fetches
        p.pSfuTail = 0.9;
        p.allowTex = true;
        p.maxLoopDepth = 1;
        break;
      case 4:  // degenerate blocks and predicated stores
        p.pDegenerateBlock = 0.7;
        p.pPredicatedStore = 0.7;
        p.maxLoopDepth = 1;
        break;
      default: // everything mixed
        p.maxLoopDepth = 2;
        p.maxHammockDepth = 2;
        p.pDuplicateOperand = 0.35;
        break;
    }
    return p;
}

} // namespace rfh
