/**
 * @file
 * Lifetime-shortening instruction scheduler (Section 7, "Instruction
 * Scheduling").
 *
 * The paper estimates that reordering instructions within basic blocks
 * to move consumers closer to producers could increase the effective
 * ORF size; this pass implements that transformation for real. It list
 * -schedules each basic block, preserving all data dependences (RAW,
 * WAR, WAW through registers; program order among memory operations
 * and barriers), and greedily picks the ready instruction that
 * consumes the most recently produced values — shortening value
 * lifetimes so more of them fit the LRF/ORF occupancy windows.
 *
 * The scheduler is conservative: terminators stay terminal, memory
 * side effects keep their order, and the transformed kernel is
 * bit-exactly equivalent (the test suite executes both versions).
 */

#ifndef RFH_COMPILER_SCHEDULER_H
#define RFH_COMPILER_SCHEDULER_H

#include "ir/kernel.h"

namespace rfh {

/** Statistics of one scheduling run. */
struct ScheduleStats
{
    int blocksScheduled = 0;
    int instructionsMoved = 0;  ///< Instructions not at original index.
    /** Sum over defs of (consumer distance before - after). */
    long lifetimeReduction = 0;
};

/**
 * Reschedule every basic block of @p k to shorten producer-consumer
 * distances. Clears any allocator annotations (they would be stale).
 */
ScheduleStats scheduleKernel(Kernel &k);

} // namespace rfh

#endif // RFH_COMPILER_SCHEDULER_H
