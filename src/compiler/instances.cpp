#include "compiler/instances.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <optional>
#include <tuple>
#include <utility>

#include "ir/liveness.h"

namespace rfh {

namespace {

/** Per-register dataflow state of the intra-strand scan. */
struct RegState
{
    /** In-strand defs (local indices) that may reach this point. */
    std::vector<int> defs;
    /** A strand entry point may reach this point (value in MRF). */
    bool boundary = true;
    /**
     * Anchor of a read-operand deposit that is guaranteed to have
     * executed on every path to this point (Section 4.4), or -1.
     */
    int anchor = -1;
};

using StrandState = std::array<RegState, kMaxRegs>;

void
mergeInto(StrandState &into, const StrandState &from)
{
    for (int r = 0; r < kMaxRegs; r++) {
        RegState &a = into[r];
        const RegState &b = from[r];
        std::vector<int> merged;
        std::set_union(a.defs.begin(), a.defs.end(), b.defs.begin(),
                       b.defs.end(), std::back_inserter(merged));
        a.defs = std::move(merged);
        a.boundary = a.boundary || b.boundary;
        if (a.anchor != b.anchor)
            a.anchor = -1;
    }
}

StrandState
allBoundary()
{
    return StrandState{};
}

/** Union-find over local defs. */
class UnionFind
{
  public:
    explicit UnionFind(int n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    merge(int a, int b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<int> parent_;
};

struct LocalDef
{
    int lin;
    Reg reg;
    bool wideHalf;   ///< Part of a wide (64-bit) definition.
    Reg wideBase;    ///< Base register of the wide pair.
};

} // namespace

InstanceAnalysis::InstanceAnalysis(const Kernel &k, const Cfg &cfg,
                                   const StrandAnalysis &strands,
                                   const ReachingDefs &global,
                                   bool allow_long_latency_upper)
{
    int nblocks = cfg.numBlocks();

    for (int s = 0; s < strands.numStrands(); s++) {
        const Strand &st = strands.strand(s);

        // ---- Collect local defs of this strand ----
        // Defs are appended in lin order, so a (lin, reg) key resolves
        // to def_start[lin - firstLin] plus the register's half index —
        // no associative lookup on the scan path.
        const int strandLen = st.lastLin - st.firstLin + 1;
        std::vector<LocalDef> defs;
        defs.reserve(static_cast<std::size_t>(strandLen));
        std::vector<int> def_start(
            static_cast<std::size_t>(strandLen), -1);
        for (int lin = st.firstLin; lin <= st.lastLin; lin++) {
            const Instruction &in = k.instr(lin);
            if (!in.dst)
                continue;
            Reg base = *in.dst;
            int n = in.wide ? 2 : 1;
            def_start[lin - st.firstLin] =
                static_cast<int>(defs.size());
            for (int w = 0; w < n; w++) {
                Reg r = static_cast<Reg>(base + w);
                defs.push_back({lin, r, in.wide, base});
            }
        }
        UnionFind uf(static_cast<int>(defs.size()));
        // The halves of a wide def always form one instance.
        for (size_t d = 0; d + 1 < defs.size(); d++) {
            if (defs[d].wideHalf && defs[d + 1].wideHalf &&
                defs[d].lin == defs[d + 1].lin)
                uf.merge(static_cast<int>(d), static_cast<int>(d + 1));
        }

        // Per-def use records, filled by the scan.
        struct DefUses
        {
            std::vector<InstanceUse> servable;
            std::vector<InstanceUse> pinned;
        };
        std::vector<DefUses> def_uses(defs.size());

        // Read instances keyed by (anchor lin, reg): a dense
        // slot table maps the key to its entry, entries are emitted
        // in sorted key order below.
        using ReadEntry =
            std::pair<std::pair<int, Reg>, std::vector<InstanceUse>>;
        std::vector<ReadEntry> read_inst;
        std::vector<int> read_slot(
            static_cast<std::size_t>(strandLen) * kMaxRegs, -1);

        // ---- Intra-strand forward scan ----
        // State saved at the end of each block whose last instruction
        // belongs to this strand.
        std::vector<StrandState> state_out(
            static_cast<std::size_t>(nblocks));
        std::vector<char> state_present(
            static_cast<std::size_t>(nblocks), 0);

        for (int b = 0; b < nblocks; b++) {
            int bstart = k.blockStart(b);
            int bend = bstart +
                static_cast<int>(k.blocks[b].instrs.size()) - 1;
            int lo = std::max(bstart, st.firstLin);
            int hi = std::min(bend, st.lastLin);
            if (lo > hi)
                continue;

            StrandState state;
            if (lo == bstart) {
                // Merge layout-earlier predecessors that end in this
                // strand; everything else contributes "in the MRF".
                bool have = false;
                bool outside = false;
                for (int p : cfg.preds(b)) {
                    int pend = k.blockStart(p) +
                        static_cast<int>(k.blocks[p].instrs.size()) - 1;
                    if (p < b && strands.strandOf(pend) == s &&
                        state_present[p]) {
                        if (!have) {
                            state = state_out[p];
                            have = true;
                        } else {
                            mergeInto(state, state_out[p]);
                        }
                    } else {
                        outside = true;
                    }
                }
                if (!have)
                    state = allBoundary();
                else if (outside)
                    mergeInto(state, allBoundary());
            } else {
                // Strand starts mid-block: fresh entry point.
                state = allBoundary();
            }

            for (int lin = lo; lin <= hi; lin++) {
                const Instruction &in = k.instr(lin);
                bool shared_consumer = isSharedUnit(in.unit());

                auto on_use = [&](Reg r, int slot) {
                    RegState &rs = state[r];
                    InstanceUse use{lin, slot, shared_consumer};
                    if (rs.defs.empty() && rs.boundary) {
                        // Pure boundary read: read-operand candidate.
                        if (rs.anchor < 0)
                            rs.anchor = lin;
                        int &slot = read_slot
                            [(rs.anchor - st.firstLin) * kMaxRegs + r];
                        if (slot < 0) {
                            slot = static_cast<int>(read_inst.size());
                            read_inst.emplace_back(
                                std::make_pair(rs.anchor, r),
                                std::vector<InstanceUse>());
                        }
                        read_inst[slot].second.push_back(use);
                    } else if (!rs.boundary) {
                        if (rs.defs.size() == 1) {
                            def_uses[rs.defs[0]].servable.push_back(use);
                        } else {
                            // Hammock merge (Figure 10(c)): group defs.
                            for (size_t i = 1; i < rs.defs.size(); i++)
                                uf.merge(rs.defs[0], rs.defs[i]);
                            def_uses[rs.defs[0]].servable.push_back(use);
                        }
                    } else {
                        // Mixed in-strand defs and boundary
                        // (Figure 10(a)): the read is pinned to the MRF
                        // and the defs must keep the MRF up to date.
                        for (int d : rs.defs)
                            def_uses[d].pinned.push_back(use);
                    }
                };

                for (int sl = 0; sl < in.numSrcs; sl++)
                    if (in.srcs[sl].isReg)
                        on_use(in.srcs[sl].reg, sl);
                if (in.pred)
                    on_use(*in.pred, kPredSlot);

                if (in.dst) {
                    int n = in.wide ? 2 : 1;
                    bool kills = !in.pred.has_value();
                    for (int w = 0; w < n; w++) {
                        Reg r = static_cast<Reg>(*in.dst + w);
                        RegState &rs = state[r];
                        int local = def_start[lin - st.firstLin] + w;
                        if (kills) {
                            rs.defs = {local};
                            rs.boundary = false;
                        } else {
                            // Predicated definition: merges with the
                            // old value (a one-instruction hammock).
                            if (std::find(rs.defs.begin(),
                                          rs.defs.end(), local) ==
                                rs.defs.end()) {
                                rs.defs.push_back(local);
                                std::sort(rs.defs.begin(),
                                          rs.defs.end());
                            }
                        }
                        rs.anchor = -1;
                    }
                }
            }

            if (hi == bend) {
                state_out[b] = std::move(state);
                state_present[b] = 1;
            }
        }

        // ---- Fold local defs into grouped value instances ----
        // Group roots are local def ids, so a defs-sized vector
        // indexed by root reproduces the old map's ascending-root
        // emission order; empty slots are non-roots.
        std::vector<std::vector<int>> groups(defs.size());
        for (int d = 0; d < static_cast<int>(defs.size()); d++)
            groups[uf.find(d)].push_back(d);

        for (auto &members : groups) {
            if (members.empty())
                continue;
            ValueInstance vi;
            vi.strand = s;
            vi.reg = defs[members.front()].reg;
            bool wide = defs[members.front()].wideHalf;
            bool mixed_wide = false;
            for (int d : members) {
                if (defs[d].wideHalf != wide)
                    mixed_wide = true;
                if (defs[d].wideHalf)
                    vi.reg = defs[d].wideBase;
            }
            vi.wide = wide;
            for (int d : members) {
                if (std::find(vi.defLins.begin(), vi.defLins.end(),
                              defs[d].lin) == vi.defLins.end())
                    vi.defLins.push_back(defs[d].lin);
                for (const auto &u : def_uses[d].servable)
                    vi.uses.push_back(u);
                for (const auto &u : def_uses[d].pinned)
                    vi.mrfPinnedUses.push_back(u);
            }
            std::sort(vi.defLins.begin(), vi.defLins.end());
            auto by_pos = [](const InstanceUse &a, const InstanceUse &b) {
                return std::tie(a.lin, a.slot) < std::tie(b.lin, b.slot);
            };
            std::sort(vi.uses.begin(), vi.uses.end(), by_pos);
            vi.uses.erase(std::unique(vi.uses.begin(), vi.uses.end(),
                                      [](const InstanceUse &a,
                                         const InstanceUse &b) {
                                          return a.lin == b.lin &&
                                              a.slot == b.slot;
                                      }),
                          vi.uses.end());
            std::sort(vi.mrfPinnedUses.begin(), vi.mrfPinnedUses.end(),
                      by_pos);

            // A group that mixes wide and narrow defs is never
            // allocated upper levels: pin all its reads to the MRF.
            if (mixed_wide) {
                for (const auto &u : vi.uses)
                    vi.mrfPinnedUses.push_back(u);
                vi.uses.clear();
            }

            // Long-latency producers deliver their result after the
            // strand has been descheduled; they always write the MRF.
            for (int dl : vi.defLins) {
                const Instruction &din = k.instr(dl);
                if (din.longLatency() && !allow_long_latency_upper) {
                    for (const auto &u : vi.uses)
                        vi.mrfPinnedUses.push_back(u);
                    vi.uses.clear();
                    vi.liveOut = true;
                }
                if (isSharedUnit(din.unit()))
                    vi.sharedProducer = true;
            }

            // Live out: any global use not accounted as an in-strand
            // servable or pinned use.
            auto counted = [&](int lin, int slot) {
                for (const auto &u : vi.uses)
                    if (u.lin == lin && u.slot == slot)
                        return true;
                for (const auto &u : vi.mrfPinnedUses)
                    if (u.lin == lin && u.slot == slot)
                        return true;
                return false;
            };
            for (int d : members) {
                // Map the local def to its global def id.
                for (DefId g : global.defsAt(defs[d].lin)) {
                    if (global.defReg(g) != defs[d].reg)
                        continue;
                    for (const UseSite &u : global.uses(g))
                        if (!counted(u.lin, u.slot))
                            vi.liveOut = true;
                }
            }
            values_.push_back(std::move(vi));
        }

        // ---- Read instances ----
        // Entries were appended in first-touch order; sort by key to
        // match the old map's ascending (anchor, reg) emission.
        std::sort(read_inst.begin(), read_inst.end(),
                  [](const ReadEntry &a, const ReadEntry &b) {
                      return a.first < b.first;
                  });
        for (auto &[key, uses] : read_inst) {
            ReadInstance ri;
            ri.strand = s;
            ri.reg = key.second;
            ri.uses = std::move(uses);
            std::sort(ri.uses.begin(), ri.uses.end(),
                      [](const InstanceUse &a, const InstanceUse &b) {
                          return std::tie(a.lin, a.slot) <
                              std::tie(b.lin, b.slot);
                      });
            reads_.push_back(std::move(ri));
        }
    }
}

} // namespace rfh
