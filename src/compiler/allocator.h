/**
 * @file
 * The compile-time register file hierarchy allocator (Section 4).
 *
 * Implements the paper's greedy allocation algorithm (Figure 7) with
 * all its extensions: partial-range allocation (Section 4.3),
 * read-operand allocation (Section 4.4), forward-branch handling
 * (Section 4.5), and the three-level LRF/ORF/MRF hierarchy with an
 * optional split LRF (Section 4.6). The allocator mutates only the
 * annotation fields of the kernel's instructions.
 */

#ifndef RFH_COMPILER_ALLOCATOR_H
#define RFH_COMPILER_ALLOCATOR_H

#include "compiler/allocation.h"
#include "energy/energy_params.h"
#include "ir/analysis_bundle.h"
#include "ir/kernel.h"

namespace rfh {

/** Compile-time allocator over the LRF/ORF/MRF hierarchy. */
class HierarchyAllocator
{
  public:
    HierarchyAllocator(const EnergyParams &params, const AllocOptions &opts);

    /**
     * Run strand formation and allocation over @p k.
     *
     * Clears any existing annotations, recomputes strands (setting the
     * end-of-strand bits), and annotates every operand with the level
     * it is read from / written to.
     *
     * @param analyses optional precomputed CFG + reaching-defs bundle
     *        for a kernel with @p k's structure (annotations may
     *        differ); when null the analyses are computed locally.
     */
    AllocStats run(Kernel &k, const AnalysisBundle *analyses = nullptr)
        const;

    const AllocOptions &
    options() const
    {
        return opts_;
    }

  private:
    EnergyParams params_;
    AllocOptions opts_;
};

} // namespace rfh

#endif // RFH_COMPILER_ALLOCATOR_H
