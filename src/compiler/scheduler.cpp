#include "compiler/scheduler.h"

#include <algorithm>
#include <vector>

#include "ir/liveness.h"

namespace rfh {

namespace {

/** True if the instruction has memory or synchronisation side effects. */
bool
hasSideEffects(const Instruction &in)
{
    switch (in.op) {
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED:
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED:
      case Opcode::LD_PARAM:
      case Opcode::TEX:
      case Opcode::BAR:
        return true;
      default:
        return false;
    }
}

/** Average distance from each def to its in-block consumers. */
long
lifetimeCost(const std::vector<Instruction> &instrs)
{
    long cost = 0;
    int n = static_cast<int>(instrs.size());
    for (int i = 0; i < n; i++) {
        RegSet defs = definedRegs(instrs[i]);
        if (defs.none())
            continue;
        for (int j = i + 1; j < n; j++) {
            if ((usedRegs(instrs[j]) & defs).any())
                cost += j - i;
            defs &= ~definedRegs(instrs[j]);
            if (defs.none())
                break;
        }
    }
    return cost;
}

/** List-schedule one block body (terminator excluded). */
std::vector<int>
scheduleBody(const std::vector<Instruction> &instrs, int n)
{
    // Dependence edges: j depends on i (i must precede j).
    std::vector<std::vector<int>> succs(n);
    std::vector<int> pred_count(n, 0);
    int last_side_effect = -1;
    for (int j = 0; j < n; j++) {
        RegSet uses_j = usedRegs(instrs[j]);
        RegSet defs_j = definedRegs(instrs[j]);
        for (int i = j - 1; i >= 0; i--) {
            RegSet defs_i = definedRegs(instrs[i]);
            RegSet uses_i = usedRegs(instrs[i]);
            bool raw = (defs_i & uses_j).any();
            bool waw = (defs_i & defs_j).any();
            bool war = (uses_i & defs_j).any();
            if (raw || waw || war) {
                // Correctness needs every conflict edge; blocks are
                // small enough that the dense graph is cheap.
                succs[i].push_back(j);
                pred_count[j]++;
            }
        }
        if (hasSideEffects(instrs[j])) {
            if (last_side_effect >= 0) {
                succs[last_side_effect].push_back(j);
                pred_count[j]++;
            }
            last_side_effect = j;
        }
    }

    // Backward list scheduling: fill positions n-1..0, choosing among
    // the instructions whose in-block consumers are all placed. The
    // priority places each producer as close as possible to its
    // nearest consumer:
    //   1. smallest nearest-consumer position (tightest lifetime);
    //   2. smallest dependence height (shallow chains go late, leaving
    //      room for deep chains to start early);
    //   3. largest original index (stability).
    std::vector<std::vector<int>> preds(n);
    for (int i = 0; i < n; i++)
        for (int j : succs[i])
            preds[j].push_back(i);
    std::vector<int> height(n, 0);
    for (int j = 0; j < n; j++)
        for (int i : preds[j])
            height[j] = std::max(height[j], height[i] + 1);

    std::vector<int> succ_count(n, 0);
    for (int i = 0; i < n; i++)
        succ_count[i] = static_cast<int>(succs[i].size());

    std::vector<int> order(n, -1);
    std::vector<bool> placed(n, false);
    // Position each register's nearest placed consumer.
    std::vector<int> consumer_pos(kMaxRegs, n + 1);
    for (int pos = n - 1; pos >= 0; pos--) {
        int best = -1;
        int best_consumer = 0;
        int best_height = 0;
        for (int j = 0; j < n; j++) {
            if (placed[j] || succ_count[j] > 0)
                continue;
            RegSet defs = definedRegs(instrs[j]);
            int nearest = n + 1;
            for (int r = 0; r < kMaxRegs; r++)
                if (defs.test(r))
                    nearest = std::min(nearest, consumer_pos[r]);
            bool better;
            if (best < 0) {
                better = true;
            } else if (nearest != best_consumer) {
                better = nearest < best_consumer;
            } else if (height[j] != best_height) {
                better = height[j] < best_height;
            } else {
                better = j > best;
            }
            if (better) {
                best = j;
                best_consumer = nearest;
                best_height = height[j];
            }
        }
        order[pos] = best;
        placed[best] = true;
        for (int i : preds[best])
            succ_count[i]--;
        RegSet uses = usedRegs(instrs[best]);
        for (int r = 0; r < kMaxRegs; r++)
            if (uses.test(r))
                consumer_pos[r] = pos;
        // Values this instruction redefines hide earlier consumers.
        RegSet defs = definedRegs(instrs[best]);
        for (int r = 0; r < kMaxRegs; r++)
            if (defs.test(r) && !uses.test(r))
                consumer_pos[r] = n + 1;
    }
    return order;
}

} // namespace

ScheduleStats
scheduleKernel(Kernel &k)
{
    ScheduleStats stats;
    for (auto &bb : k.blocks) {
        int n = static_cast<int>(bb.instrs.size());
        if (n <= 1)
            continue;
        // Keep the terminator pinned at the end.
        int body = n;
        const Instruction &last = bb.instrs.back();
        if (last.op == Opcode::BRA || last.op == Opcode::EXIT)
            body = n - 1;
        if (body <= 1)
            continue;

        long before = lifetimeCost(bb.instrs);
        std::vector<int> order = scheduleBody(bb.instrs, body);
        std::vector<Instruction> scheduled;
        scheduled.reserve(n);
        for (int idx : order)
            scheduled.push_back(bb.instrs[idx]);
        for (int i = body; i < n; i++)
            scheduled.push_back(bb.instrs[i]);
        long after = lifetimeCost(scheduled);

        // Only keep the new order if it actually shortens lifetimes.
        if (after < before) {
            for (int i = 0; i < body; i++)
                if (order[i] != i)
                    stats.instructionsMoved++;
            stats.lifetimeReduction += before - after;
            bb.instrs = std::move(scheduled);
            stats.blocksScheduled++;
        }
    }
    k.finalize();
    k.clearAnnotations();
    return stats;
}

} // namespace rfh
