#include "compiler/regalloc.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "ir/cfg_analysis.h"
#include "ir/liveness.h"

namespace rfh {

namespace {

struct LiveInterval
{
    Reg vreg = 0;
    int start = 0;
    int end = 0;
    int phys = -1;      ///< Assigned architectural register.
    int spillSlot = -1; ///< Spill slot index when phys < 0.
};

/** Scratch registers reserved for spill code (one per operand slot). */
constexpr int kNumScratch = kMaxSrcs;

} // namespace

RegAllocStats
allocateRegisters(Kernel &k, const RegAllocOptions &opts)
{
    RegAllocStats stats;
    Cfg cfg(k);
    Liveness liveness(k, cfg);
    int n = k.numInstrs();

    // Registers that keep their names: live into the kernel (inputs
    // such as the thread id and parameter base) or halves of wide
    // (64-bit) definitions, which would need consecutive physical
    // pairs.
    RegSet pinned = liveness.liveIn(0);
    for (int lin = 0; lin < n; lin++) {
        const Instruction &in = k.instr(lin);
        if (in.dst && in.wide) {
            pinned.set(*in.dst);
            pinned.set(*in.dst + 1);
        }
    }

    // Live intervals over the linear order (liveness already accounts
    // for loop back edges, so intervals are loop-safe).
    std::vector<LiveInterval> intervals;
    {
        std::vector<int> first(kMaxRegs, -1), last(kMaxRegs, -1);
        for (int lin = 0; lin < n; lin++) {
            RegSet live = usedRegs(k.instr(lin)) |
                definedRegs(k.instr(lin)) | liveness.liveAfter(lin);
            for (int r = 0; r < kMaxRegs; r++) {
                if (!live.test(r))
                    continue;
                if (first[r] < 0)
                    first[r] = lin;
                last[r] = lin;
            }
        }
        for (int r = 0; r < kMaxRegs; r++) {
            if (first[r] < 0 || pinned.test(r))
                continue;
            intervals.push_back(LiveInterval{static_cast<Reg>(r),
                                             first[r], last[r], -1, -1});
        }
    }
    stats.liveRanges = static_cast<int>(intervals.size());
    std::sort(intervals.begin(), intervals.end(),
              [](const LiveInterval &a, const LiveInterval &b) {
                  return std::tie(a.start, a.vreg) <
                      std::tie(b.start, b.vreg);
              });

    // The allocatable pool: the configured window minus pinned names.
    auto build_pool = [&](bool reserve_scratch) {
        std::vector<int> pool;
        for (int r = opts.firstReg;
             r < opts.firstReg + opts.numRegs && r < kMaxRegs; r++)
            if (!pinned.test(r))
                pool.push_back(r);
        if (reserve_scratch) {
            for (int i = 0; i < kNumScratch &&
                 static_cast<int>(pool.size()) > 1; i++)
                pool.pop_back();
        }
        return pool;
    };

    // Linear scan (Poletto & Sarkar): returns true if no spills needed.
    auto run_scan = [&](const std::vector<int> &pool) {
        int next_slot = 0;
        for (auto &iv : intervals) {
            iv.phys = -1;
            iv.spillSlot = -1;
        }
        std::vector<LiveInterval *> active;
        std::vector<bool> in_use(kMaxRegs, false);
        bool spilled = false;
        for (auto &iv : intervals) {
            // Expire old intervals.
            active.erase(std::remove_if(active.begin(), active.end(),
                [&](LiveInterval *a) {
                    if (a->end < iv.start) {
                        if (a->phys >= 0)
                            in_use[a->phys] = false;
                        return true;
                    }
                    return false;
                }), active.end());
            int phys = -1;
            for (int r : pool) {
                if (!in_use[r]) {
                    phys = r;
                    break;
                }
            }
            if (phys >= 0) {
                iv.phys = phys;
                in_use[phys] = true;
                active.push_back(&iv);
            } else {
                // Spill the active interval with the furthest end (or
                // this one).
                LiveInterval *victim = &iv;
                for (LiveInterval *a : active)
                    if (a->end > victim->end)
                        victim = a;
                if (victim != &iv) {
                    iv.phys = victim->phys;
                    victim->spillSlot = next_slot++;
                    victim->phys = -1;
                    *std::find(active.begin(), active.end(), victim) =
                        &iv;
                } else {
                    iv.spillSlot = next_slot++;
                }
                spilled = true;
            }
        }
        return !spilled;
    };

    bool fits = run_scan(build_pool(false));
    std::vector<int> scratch;
    if (!fits) {
        // Re-run with scratch registers reserved for spill code.
        std::vector<int> full = build_pool(false);
        std::vector<int> pool = build_pool(true);
        run_scan(pool);
        for (std::size_t i = pool.size(); i < full.size(); i++)
            scratch.push_back(full[i]);
    }

    // Build the rename map and spill table.
    std::vector<int> rename(kMaxRegs);
    std::vector<int> spill_slot(kMaxRegs, -1);
    for (int r = 0; r < kMaxRegs; r++)
        rename[r] = r;
    RegSet used_phys;
    for (const auto &iv : intervals) {
        if (iv.phys >= 0) {
            rename[iv.vreg] = iv.phys;
            used_phys.set(iv.phys);
        } else {
            spill_slot[iv.vreg] = iv.spillSlot;
            stats.spilledRanges++;
        }
    }
    stats.regsUsed = static_cast<int>(used_phys.count());

    // The parameter-base register anchors spill addressing; it must
    // not be renamed or redefined (true for all RPTX conventions).
    const Reg spill_base_reg = kMaxRegs - 1;

    // Rewrite each block, renaming operands and inserting spill code.
    for (auto &bb : k.blocks) {
        std::vector<Instruction> out;
        out.reserve(bb.instrs.size());
        for (Instruction in : bb.instrs) {
            int next_scratch = 0;
            auto scratch_reg = [&]() {
                return static_cast<Reg>(
                    scratch[next_scratch++ % scratch.size()]);
            };
            auto fix_read = [&](Reg r) -> Reg {
                if (spill_slot[r] >= 0) {
                    Reg s = scratch_reg();
                    out.push_back(makeLoad(
                        Opcode::LD_SHARED, s, spill_base_reg,
                        opts.spillBase + 4 * spill_slot[r]));
                    stats.spillLoads++;
                    return s;
                }
                return static_cast<Reg>(rename[r]);
            };
            for (int s = 0; s < in.numSrcs; s++)
                if (in.srcs[s].isReg)
                    in.srcs[s].reg = fix_read(in.srcs[s].reg);
            if (in.pred)
                in.pred = fix_read(*in.pred);
            if (in.dst && !in.wide && spill_slot[*in.dst] >= 0) {
                // Use a scratch register the operand loads above did
                // not claim, so a spilled predicate/source survives
                // until this instruction reads it.
                Reg s = scratch.empty()
                    ? *in.dst
                    : static_cast<Reg>(
                          scratch[next_scratch % scratch.size()]);
                int slot = spill_slot[*in.dst];
                in.dst = s;
                out.push_back(in);
                Instruction store = makeStore(Opcode::ST_SHARED,
                                              spill_base_reg, s,
                                              opts.spillBase + 4 * slot);
                // A predicated definition must also predicate its
                // spill store (inactive threads keep the old value).
                store.pred = in.pred;
                out.push_back(store);
                stats.spillStores++;
                continue;
            }
            if (in.dst)
                in.dst = static_cast<Reg>(rename[*in.dst]);
            out.push_back(in);
        }
        bb.instrs = std::move(out);
    }
    k.finalize();
    k.clearAnnotations();
    return stats;
}

} // namespace rfh
