#include "compiler/limit_study.h"

#include <algorithm>

#include "compiler/allocator.h"
#include "core/experiment.h"
#include "core/memo.h"
#include "core/parallel.h"
#include "core/sweep.h"
#include "sim/baseline_exec.h"
#include "sim/sw_exec.h"

namespace rfh {

namespace {

/** Aggregate normalised energy of one configuration. */
double
normEnergy(const ExperimentConfig &cfg)
{
    return runAllWorkloads(cfg).normalizedEnergy();
}

} // namespace

LimitStudyResults
runLimitStudy(const EnergyParams &params)
{
    LimitStudyResults r;

    ExperimentConfig best;
    best.scheme = Scheme::SW_THREE_LEVEL;
    best.entries = 3;
    best.splitLRF = true;
    best.energy = params;
    r.realistic = normEnergy(best);

    // ---- Ideal systems: price the baseline traffic at one level ----
    AccessCounts bc = aggregateBaselineCounts();
    EnergyModel em3(params, 3);
    double base_pj = bc.totalEnergyPJ(em3);
    {
        // Every operand lives next to the ALUs in the LRF.
        EnergyModel em(params, 1);
        double e = bc.allReads() *
            em.readEnergy(Level::LRF, Datapath::PRIVATE) +
            bc.allWrites() * em.writeEnergy(Level::LRF,
                                            Datapath::PRIVATE);
        r.idealAllLrf = e / base_pj;
    }
    {
        // Every operand serviced by a 5-entry ORF (correct wire
        // distances per consuming datapath).
        EnergyModel em(params, 5);
        double e = 0.0;
        for (int d = 0; d < 2; d++) {
            Datapath dp = static_cast<Datapath>(d);
            e += bc.reads[static_cast<int>(Level::MRF)][d] *
                em.readEnergy(Level::ORF, dp);
            e += bc.writes[static_cast<int>(Level::MRF)][d] *
                em.writeEnergy(Level::ORF, dp);
        }
        r.idealAllOrf5 = e / base_pj;
    }

    // ---- Variable ORF allocation with an oracle scheduler ----
    // Each strand declares (in its header) the savings of being granted
    // 1..8 ORF entries; the oracle scheduler hands out entries so the
    // total storage stays at the physical structure's 3 entries/thread
    // average, and the allocator then compiles with those per-strand
    // budgets (Section 7).
    auto variable_energy = [&](int mean_budget) {
        const std::vector<Workload> &ws = allWorkloads();
        std::vector<double> e(ws.size(), 0.0), base(ws.size(), 0.0);
        // Workloads are independent; fan them out and fold the energy
        // sums in registry order for a thread-count-invariant result.
        globalPool().parallelFor(
            static_cast<int>(ws.size()), [&](int i) {
            const Workload &w = ws[i];
            ExperimentCache &cache = globalExperimentCache();
            std::shared_ptr<const AnalysisBundle> analyses =
                cache.analyses(w.kernel);
            // Per-strand savings at every size, priced at the fixed
            // physical structure.
            std::vector<std::vector<double>> savings_by_size;
            int strands = 0;
            for (int entries = 1; entries <= kMaxOrfEntries; entries++) {
                Kernel kk = w.kernel;
                AllocOptions ao;
                ao.orfEntries = entries;
                ao.orfPriceEntries = 3;
                ao.useLRF = true;
                ao.splitLRF = true;
                HierarchyAllocator alloc(params, ao);
                AllocStats st = alloc.run(kk, analyses.get());
                savings_by_size.push_back(st.strandSavings);
                strands = st.strands;
            }
            // Greedy marginal assignment under the storage budget.
            std::vector<int> budget(strands, 1);
            int pool = mean_budget * strands - strands;
            while (pool > 0) {
                int best_s = -1;
                double best_gain = 0.0;
                for (int s = 0; s < strands; s++) {
                    if (budget[s] >= kMaxOrfEntries)
                        continue;
                    double gain = savings_by_size[budget[s]][s] -
                        savings_by_size[budget[s] - 1][s];
                    if (gain > best_gain) {
                        best_gain = gain;
                        best_s = s;
                    }
                }
                if (best_s < 0)
                    break;
                budget[best_s]++;
                pool--;
            }
            // Compile with the chosen budgets and execute.
            Kernel kk = w.kernel;
            AllocOptions ao;
            ao.orfEntries = kMaxOrfEntries;
            ao.orfPriceEntries = 3;
            ao.useLRF = true;
            ao.splitLRF = true;
            ao.perStrandEntries = budget;
            HierarchyAllocator alloc(params, ao);
            alloc.run(kk, analyses.get());
            SwExecConfig sc;
            sc.run = w.run;
            SwExecResult res = runSwHierarchy(kk, ao, sc,
                                              analyses.get());
            EnergyModel em(params, 3, true);
            e[i] = res.counts.totalEnergyPJ(em);
            base[i] = cache.baseline(w.kernel, w.run)
                .totalEnergyPJ(em);
        });
        double e_sum = 0.0, base_sum = 0.0;
        for (std::size_t i = 0; i < ws.size(); i++) {
            e_sum += e[i];
            base_sum += base[i];
        }
        return e_sum / base_sum;
    };
    r.variableOracle = variable_energy(3);

    // ---- Fewer active warps: 6 warps share the 8-warp ORF, giving
    // each 4 entries at the physical 3-entry-per-thread energy ----
    r.fewerActiveWarps = variable_energy(4);

    // ---- Hardware cache across backward branches ----
    {
        ExperimentConfig cfg;
        cfg.scheme = Scheme::HW_TWO_LEVEL;
        cfg.entries = 6;
        cfg.energy = params;
        cfg.hwFlushOnBackwardBranch = false;
        r.hwResidentPastBackward = normEnergy(cfg);
        cfg.hwFlushOnBackwardBranch = true;
        r.hwFlushAtBackward = normEnergy(cfg);
    }

    // ---- Idealised instruction scheduling ----
    {
        ExperimentConfig cfg = best;
        cfg.entries = 8;
        cfg.orfPriceEntries = 3;
        r.sched8EntriesAt3 = normEnergy(cfg);
        cfg.entries = 5;
        r.sched5EntriesAt3 = normEnergy(cfg);
    }

    // ---- Never flush across deschedules / strand boundaries ----
    {
        ExperimentConfig cfg = best;
        cfg.idealNoFlush = true;
        cfg.strandOptions.cutAtBackwardBranch = false;
        cfg.strandOptions.cutAtLongLatency = false;
        cfg.strandOptions.cutAtUncertainMerge = false;
        r.neverFlush = normEnergy(cfg);
    }

    return r;
}

} // namespace rfh
