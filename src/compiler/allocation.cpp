#include "compiler/allocation.h"

#include <algorithm>

namespace rfh {

EntryTimeline::EntryTimeline(int num_entries) : busy_(num_entries)
{
}

bool
EntryTimeline::available(int e, int begin, int end) const
{
    for (const Interval &iv : busy_[e])
        if (begin < iv.end && iv.begin < end)
            return false;
    return true;
}

void
EntryTimeline::allocate(int e, int begin, int end)
{
    busy_[e].push_back(Interval{begin, end});
}

int
EntryTimeline::findFree(int begin, int end, int limit) const
{
    int cap = limit < 0 ? numEntries() : std::min(limit, numEntries());
    for (int e = 0; e < cap; e++)
        if (available(e, begin, end))
            return e;
    return -1;
}

int
EntryTimeline::findFreePair(int begin, int end, int limit) const
{
    int cap = limit < 0 ? numEntries() : std::min(limit, numEntries());
    for (int e = 0; e + 1 < cap; e++)
        if (available(e, begin, end) && available(e + 1, begin, end))
            return e;
    return -1;
}

namespace {

Datapath
useDp(const InstanceUse &u)
{
    return u.shared ? Datapath::SHARED : Datapath::PRIVATE;
}

} // namespace

double
orfValueSavings(const ValueInstance &vi, const EnergyModel &em, int num_uses)
{
    double savings = 0.0;
    int n = 0;
    for (const auto &u : vi.uses) {
        if (n++ >= num_uses)
            break;
        savings += em.readEnergy(Level::MRF, useDp(u)) -
            em.readEnergy(Level::ORF, useDp(u));
    }
    Datapath prod = vi.sharedProducer ? Datapath::SHARED
                                      : Datapath::PRIVATE;
    int writes = static_cast<int>(vi.defLins.size()) * vi.width();
    savings -= writes * em.writeEnergy(Level::ORF, prod);
    bool mrf_write = vi.needsMrfWrite() ||
        num_uses < static_cast<int>(vi.uses.size());
    if (!mrf_write)
        savings += writes * em.writeEnergy(Level::MRF, prod);
    return savings;
}

double
orfReadSavings(const ReadInstance &ri, const EnergyModel &em, int num_uses)
{
    // The first read still comes from the MRF; the deposit into the ORF
    // is pure overhead (Figure 9). Reads in the same instruction as the
    // depositing read cannot see the deposit (it lands in the write
    // phase) and stay on the MRF.
    double savings = 0.0;
    int first_lin = ri.firstUseLin();
    int n = 0;
    for (const auto &u : ri.uses) {
        if (n++ >= num_uses)
            break;
        if (u.lin == first_lin)
            continue;
        savings += em.readEnergy(Level::MRF, useDp(u)) -
            em.readEnergy(Level::ORF, useDp(u));
    }
    savings -= em.writeEnergy(Level::ORF, useDp(ri.uses.front()));
    return savings;
}

double
lrfValueSavings(const ValueInstance &vi, const EnergyModel &em)
{
    double savings = 0.0;
    for (const auto &u : vi.uses) {
        savings += em.readEnergy(Level::MRF, useDp(u)) -
            em.readEnergy(Level::LRF, useDp(u));
    }
    Datapath prod = vi.sharedProducer ? Datapath::SHARED
                                      : Datapath::PRIVATE;
    int writes = static_cast<int>(vi.defLins.size());
    savings -= writes * em.writeEnergy(Level::LRF, prod);
    if (!vi.needsMrfWrite())
        savings += writes * em.writeEnergy(Level::MRF, prod);
    return savings;
}

bool
lrfEligible(const ValueInstance &vi, const Kernel &k, bool split_lrf,
            bool allow_shared_producers)
{
    if (vi.wide)
        return false;
    // By default producers must be private ALUs: the LRF write path
    // hangs off the ALU result bus (Figure 4). Long-latency producers
    // are never eligible (their strand ends before the first read).
    for (int dl : vi.defLins) {
        const Instruction &din = k.instr(dl);
        if (din.longLatency())
            return false;
        if (!allow_shared_producers &&
            unitClass(din.op) != UnitClass::ALU)
            return false;
        if (unitClass(din.op) == UnitClass::CTRL)
            return false;
    }
    // Consumers must be private ALUs too (the shared datapath cannot
    // reach the LRF, Section 3.2).
    for (const auto &u : vi.uses) {
        if (u.shared || u.slot == kPredSlot)
            return false;
        if (unitClass(k.instr(u.lin).op) != UnitClass::ALU)
            return false;
    }
    if (split_lrf) {
        // With one bank per operand slot, all reads must come through
        // the same slot (Section 3.2).
        for (const auto &u : vi.uses)
            if (u.slot != vi.uses.front().slot)
                return false;
    }
    return true;
}

} // namespace rfh
