#include "compiler/allocator.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "core/metrics.h"
#include "ir/reaching_defs.h"

namespace rfh {

namespace {

/**
 * Per-pass observability of the allocation pipeline (strand cuts,
 * instance dataflow, LRF pass, ORF pass). Registered once; updates
 * are relaxed atomics, so the parallel sweep's concurrent allocator
 * runs never contend. Metrics never influence allocation decisions.
 */
struct AllocMetrics
{
    Counter &runs = globalMetrics().counter("alloc.runs");
    Timer &strands = globalMetrics().timer("alloc.phase.strands");
    Timer &instances = globalMetrics().timer("alloc.phase.instances");
    Timer &lrfPass = globalMetrics().timer("alloc.phase.lrf");
    Timer &orfPass = globalMetrics().timer("alloc.phase.orf");
    Counter &lrfValues = globalMetrics().counter("alloc.values.lrf");
    Counter &orfValuesFull =
        globalMetrics().counter("alloc.values.orf.full");
    Counter &orfValuesPartial =
        globalMetrics().counter("alloc.values.orf.partial");
    Counter &orfReads = globalMetrics().counter("alloc.reads.orf");
    Counter &mrfWritesElided =
        globalMetrics().counter("alloc.mrfWritesElided");
};

AllocMetrics &
allocMetrics()
{
    static AllocMetrics m;
    return m;
}

/** Priority of an allocation candidate: savings per occupied slot. */
double
priorityOf(double savings, std::pair<int, int> interval)
{
    int slots = std::max(1, interval.second - interval.first);
    return savings / slots;
}

ReadAnnotation &
annoForUse(Instruction &in, int slot)
{
    return slot == kPredSlot ? in.predAnno : in.readAnno[slot];
}

Reg
regOfUse(const Instruction &in, int slot)
{
    if (slot == kPredSlot)
        return *in.pred;
    assert(in.srcs[slot].isReg);
    return in.srcs[slot].reg;
}

void
annotateValueOrf(Kernel &k, const ValueInstance &vi, int entry,
                 int num_uses, bool mrf_write)
{
    for (int dl : vi.defLins) {
        Instruction &in = k.instr(dl);
        in.writeAnno.toORF = true;
        in.writeAnno.orfEntry = static_cast<std::uint8_t>(entry);
        in.writeAnno.toMRF = mrf_write;
    }
    int n = 0;
    for (const auto &u : vi.uses) {
        if (n++ >= num_uses)
            break;
        Instruction &in = k.instr(u.lin);
        ReadAnnotation &ra = annoForUse(in, u.slot);
        Reg r = regOfUse(in, u.slot);
        assert(r >= vi.reg && r < vi.reg + vi.width());
        ra.level = Level::ORF;
        ra.entry = static_cast<std::uint8_t>(entry + (r - vi.reg));
    }
}

void
annotateValueLrf(Kernel &k, const ValueInstance &vi, int bank,
                 bool mrf_write)
{
    for (int dl : vi.defLins) {
        Instruction &in = k.instr(dl);
        in.writeAnno.toLRF = true;
        in.writeAnno.lrfBank = static_cast<std::uint8_t>(bank);
        in.writeAnno.toMRF = mrf_write;
    }
    for (const auto &u : vi.uses) {
        Instruction &in = k.instr(u.lin);
        ReadAnnotation &ra = annoForUse(in, u.slot);
        ra.level = Level::LRF;
        ra.lrfBank = static_cast<std::uint8_t>(bank);
    }
}

void
annotateReadOrf(Kernel &k, const ReadInstance &ri, int entry, int num_uses)
{
    int first_lin = ri.firstUseLin();
    int n = 0;
    for (const auto &u : ri.uses) {
        if (n++ >= num_uses)
            break;
        Instruction &in = k.instr(u.lin);
        ReadAnnotation &ra = annoForUse(in, u.slot);
        if (n == 1) {
            // First read: fetch from the MRF, deposit into the ORF.
            ra.level = Level::MRF;
            ra.depositToORF = true;
            ra.entry = static_cast<std::uint8_t>(entry);
        } else if (u.lin == first_lin) {
            // Same instruction as the deposit: the value is not yet in
            // the ORF during this read phase; stay on the MRF.
            ra.level = Level::MRF;
        } else {
            ra.level = Level::ORF;
            ra.entry = static_cast<std::uint8_t>(entry);
        }
    }
}

} // namespace

HierarchyAllocator::HierarchyAllocator(const EnergyParams &params,
                                       const AllocOptions &opts)
    : params_(params), opts_(opts)
{
    assert(opts.orfEntries >= 1 && opts.orfEntries <= kMaxOrfEntries);
}

AllocStats
HierarchyAllocator::run(Kernel &k, const AnalysisBundle *analyses) const
{
    AllocMetrics &am = allocMetrics();
    am.runs.add();
    Stopwatch phaseWatch;

    k.clearAnnotations();
    // CFG and reaching defs depend only on the kernel's structure, so
    // a shared precomputed bundle is equivalent to a local one.
    std::optional<Cfg> localCfg;
    std::optional<ReachingDefs> localRd;
    const Cfg &cfg = analyses ? analyses->cfg : localCfg.emplace(k);
    StrandAnalysis sa(k, cfg, opts_.strandOptions);
    sa.markEndOfStrand(k);
    am.strands.addSec(phaseWatch.lap());
    const ReachingDefs &rd = analyses ? analyses->reachingDefs
                                      : localRd.emplace(k, cfg);
    InstanceAnalysis ia(k, cfg, sa, rd,
                        !opts_.strandOptions.cutAtLongLatency);
    am.instances.addSec(phaseWatch.lap());
    int price = opts_.orfPriceEntries ? opts_.orfPriceEntries
                                      : opts_.orfEntries;
    EnergyModel em(params_, price, opts_.splitLRF);

    AllocStats stats;
    stats.strands = sa.numStrands();
    stats.strandSavings.assign(sa.numStrands(), 0.0);
    stats.valueInstances = static_cast<int>(ia.values().size());
    stats.readInstances = static_cast<int>(ia.readInstances().size());

    EntryTimeline orf(opts_.orfEntries);
    EntryTimeline lrf(opts_.useLRF ? (opts_.splitLRF ? 3 : 1) : 0);

    const auto &values = ia.values();
    const auto &reads = ia.readInstances();
    std::vector<bool> value_done(values.size(), false);

    // ---- LRF pass (Section 4.6: fill the LRF first) ----
    if (opts_.useLRF) {
        struct LrfCand { int idx; double savings; double prio; };
        std::vector<LrfCand> cands;
        for (int i = 0; i < static_cast<int>(values.size()); i++) {
            const ValueInstance &vi = values[i];
            if (!lrfEligible(vi, k, opts_.splitLRF,
                             opts_.lrfAllowSharedProducers))
                continue;
            double s = lrfValueSavings(vi, em);
            if (s <= 0)
                continue;
            cands.push_back({i, s, priorityOf(s, valueInterval(
                vi, static_cast<int>(vi.uses.size())))});
        }
        std::stable_sort(cands.begin(), cands.end(),
                         [](const LrfCand &a, const LrfCand &b) {
                             return a.prio > b.prio;
                         });
        for (const LrfCand &c : cands) {
            const ValueInstance &vi = values[c.idx];
            auto [b, e] = valueInterval(vi,
                                        static_cast<int>(vi.uses.size()));
            int bank = 0;
            if (opts_.splitLRF && !vi.uses.empty())
                bank = vi.uses.front().slot;
            if (!lrf.available(bank, b, e))
                continue;
            lrf.allocate(bank, b, e);
            annotateValueLrf(k, vi, bank, vi.needsMrfWrite());
            value_done[c.idx] = true;
            stats.lrfValues++;
            if (!vi.needsMrfWrite())
                stats.mrfWritesElided +=
                    static_cast<int>(vi.defLins.size());
            stats.predictedSavingsPJ += c.savings;
            stats.strandSavings[vi.strand] += c.savings;
        }
    }
    am.lrfPass.addSec(phaseWatch.lap());

    // ---- ORF pass (Figure 7, plus Sections 4.3 and 4.4) ----
    struct OrfCand
    {
        bool isRead;
        int idx;
        double prio;
    };
    std::vector<OrfCand> cands;
    for (int i = 0; i < static_cast<int>(values.size()); i++) {
        if (value_done[i])
            continue;
        const ValueInstance &vi = values[i];
        int full = static_cast<int>(vi.uses.size());
        double s = orfValueSavings(vi, em, full);
        if (s <= 0 && !opts_.partialRanges)
            continue;
        if (s <= 0) {
            // A partial range may still be profitable only if the full
            // range is unprofitable purely because of long occupancy;
            // energy-wise shorter ranges save strictly less, so skip.
            continue;
        }
        cands.push_back({false, i, priorityOf(s, valueInterval(vi, full))});
    }
    if (opts_.readOperands) {
        for (int i = 0; i < static_cast<int>(reads.size()); i++) {
            const ReadInstance &ri = reads[i];
            int full = static_cast<int>(ri.uses.size());
            double s = orfReadSavings(ri, em, full);
            if (s <= 0)
                continue;
            cands.push_back({true, i, priorityOf(s, readInterval(ri,
                                                                 full))});
        }
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const OrfCand &a, const OrfCand &b) {
                         return a.prio > b.prio;
                     });

    auto budget_of = [&](int strand) {
        if (strand < static_cast<int>(opts_.perStrandEntries.size()))
            return std::min(opts_.perStrandEntries[strand],
                            opts_.orfEntries);
        return opts_.orfEntries;
    };

    for (const OrfCand &c : cands) {
        if (!c.isRead) {
            const ValueInstance &vi = values[c.idx];
            int budget = budget_of(vi.strand);
            int full = static_cast<int>(vi.uses.size());
            for (int n = full; n >= (full == 0 ? 0 : 1); n--) {
                double s = orfValueSavings(vi, em, n);
                if (s <= 0)
                    break;  // shorter ranges save strictly less
                auto [b, e] = valueInterval(vi, n);
                int entry = vi.wide ? orf.findFreePair(b, e, budget)
                                    : orf.findFree(b, e, budget);
                if (entry < 0) {
                    if (!opts_.partialRanges)
                        break;
                    continue;
                }
                orf.allocate(entry, b, e);
                if (vi.wide)
                    orf.allocate(entry + 1, b, e);
                bool mrf_write = vi.needsMrfWrite() || n < full;
                annotateValueOrf(k, vi, entry, n, mrf_write);
                if (!mrf_write)
                    stats.mrfWritesElided +=
                        static_cast<int>(vi.defLins.size()) * vi.width();
                if (n == full)
                    stats.orfValuesFull++;
                else
                    stats.orfValuesPartial++;
                stats.predictedSavingsPJ += s;
                stats.strandSavings[vi.strand] += s;
                break;
            }
        } else {
            const ReadInstance &ri = reads[c.idx];
            int budget = budget_of(ri.strand);
            int full = static_cast<int>(ri.uses.size());
            for (int n = full; n >= 2; n--) {
                double s = orfReadSavings(ri, em, n);
                if (s <= 0)
                    break;
                auto [b, e] = readInterval(ri, n);
                int entry = orf.findFree(b, e, budget);
                if (entry < 0) {
                    if (!opts_.partialRanges)
                        break;
                    continue;
                }
                orf.allocate(entry, b, e);
                annotateReadOrf(k, ri, entry, n);
                if (n == full)
                    stats.orfReadsFull++;
                else
                    stats.orfReadsPartial++;
                stats.predictedSavingsPJ += s;
                stats.strandSavings[ri.strand] += s;
                break;
            }
        }
    }
    am.orfPass.addSec(phaseWatch.lap());
    am.lrfValues.add(static_cast<std::uint64_t>(stats.lrfValues));
    am.orfValuesFull.add(
        static_cast<std::uint64_t>(stats.orfValuesFull));
    am.orfValuesPartial.add(
        static_cast<std::uint64_t>(stats.orfValuesPartial));
    am.orfReads.add(static_cast<std::uint64_t>(stats.orfReadsFull +
                                               stats.orfReadsPartial));
    am.mrfWritesElided.add(
        static_cast<std::uint64_t>(stats.mrfWritesElided));

    return stats;
}

} // namespace rfh
