/**
 * @file
 * Value-instance analysis: the allocator's view of register dataflow.
 *
 * For each strand this analysis builds:
 *
 *  - **Value instances** — each value produced in the strand, together
 *    with its in-strand reads, whether it must also be written to the
 *    MRF (live out of the strand, or read at a merge point where the
 *    value's location would be ambiguous, Section 4.5), and the
 *    datapaths of its producer and consumers. Hammock definitions of
 *    the same register that merge at a common read (Figure 10(c)) are
 *    grouped into one instance so they can share an ORF entry.
 *
 *  - **Read instances** — registers that are live into the strand and
 *    read there (candidates for read-operand allocation, Section 4.4).
 *
 * In-strand reads are computed by an intra-strand reaching-definition
 * scan that treats every strand entry point as "value lives in the MRF";
 * a read reachable both from an in-strand definition and from a strand
 * entry (Figure 10(a)) is ambiguous and is pinned to the MRF.
 */

#ifndef RFH_COMPILER_INSTANCES_H
#define RFH_COMPILER_INSTANCES_H

#include <vector>

#include "compiler/strand.h"
#include "ir/cfg_analysis.h"
#include "ir/kernel.h"
#include "ir/reaching_defs.h"

namespace rfh {

/** One in-strand read of an instance. */
struct InstanceUse
{
    int lin = -1;       ///< Reading instruction (linear index).
    int slot = 0;       ///< Operand slot, or kPredSlot.
    bool shared = false; ///< Consumer is on the shared datapath.
};

/**
 * A value produced in a strand: one definition, or a group of hammock
 * definitions of the same register that merge (Figure 10(c)).
 */
struct ValueInstance
{
    int strand = -1;
    Reg reg = 0;
    /** Defining instructions (linear indices), ascending. */
    std::vector<int> defLins;
    /** In-strand reads servable from an upper level. */
    std::vector<InstanceUse> uses;
    /** In-strand reads pinned to the MRF (ambiguous location). */
    std::vector<InstanceUse> mrfPinnedUses;
    /** Value is read after the strand (or via paths leaving it). */
    bool liveOut = false;
    /** Producer executes on the shared datapath (SFU/MEM/TEX). */
    bool sharedProducer = false;
    /** 64-bit value occupying registers {reg, reg+1}. */
    bool wide = false;

    /** @return true if any servable use is on the shared datapath. */
    bool
    hasSharedConsumer() const
    {
        for (const auto &u : uses)
            if (u.shared)
                return true;
        return false;
    }

    /** @return true if the value must reach the MRF. */
    bool
    needsMrfWrite() const
    {
        return liveOut || !mrfPinnedUses.empty();
    }

    /** First definition (occupancy interval start). */
    int
    firstDefLin() const
    {
        return defLins.front();
    }

    /** Last servable read, or the definition if never read. */
    int
    lastUseLin() const
    {
        int last = defLins.back();
        for (const auto &u : uses)
            last = std::max(last, u.lin);
        return last;
    }

    /** Number of 32-bit ORF entries the value occupies. */
    int
    width() const
    {
        return wide ? 2 : 1;
    }
};

/**
 * A register live into a strand and read there: a candidate for
 * read-operand allocation (Section 4.4). The first read always comes
 * from the MRF and deposits the value into the ORF.
 */
struct ReadInstance
{
    int strand = -1;
    Reg reg = 0;
    /** Reads, ascending by (lin, slot); at least one. */
    std::vector<InstanceUse> uses;

    int
    firstUseLin() const
    {
        return uses.front().lin;
    }

    int
    lastUseLin() const
    {
        return uses.back().lin;
    }
};

/** Instance analysis over a whole kernel. */
class InstanceAnalysis
{
  public:
    /**
     * @param allow_long_latency_upper permit long-latency results to
     *        be treated as allocatable (only valid under the
     *        Section 7 "never flush" idealisation, where upper levels
     *        survive deschedules).
     */
    InstanceAnalysis(const Kernel &k, const Cfg &cfg,
                     const StrandAnalysis &strands,
                     const ReachingDefs &global,
                     bool allow_long_latency_upper = false);

    /** All value instances, grouped, in ascending strand order. */
    const std::vector<ValueInstance> &
    values() const
    {
        return values_;
    }

    /** All read instances, in ascending strand order. */
    const std::vector<ReadInstance> &
    readInstances() const
    {
        return reads_;
    }

  private:
    std::vector<ValueInstance> values_;
    std::vector<ReadInstance> reads_;
};

} // namespace rfh

#endif // RFH_COMPILER_INSTANCES_H
