/**
 * @file
 * Register-hierarchy limit study (Section 7).
 *
 * Quantifies how much headroom remains beyond the realistic three-level
 * software design:
 *
 *  - ideal systems where every access hits the LRF (paper: -87%) or a
 *    5-entry ORF (paper: -61%);
 *  - an oracle scheduler that assigns each strand its most profitable
 *    number of ORF entries (paper: additional -6%), optionally running
 *    fewer active warps so each gets more entries (another -6%);
 *  - keeping hardware-cache contents resident across backward branches
 *    versus flushing (paper: ~5% apart);
 *  - idealised instruction scheduling: a larger ORF at a small ORF's
 *    access energy (8 entries at 3-entry cost: -9%; 5 at 3: -6%);
 *  - never flushing the ORF/LRF on deschedules (paper: -8%).
 *
 * All results are normalised to the flat single-level register file,
 * aggregated over every workload.
 */

#ifndef RFH_COMPILER_LIMIT_STUDY_H
#define RFH_COMPILER_LIMIT_STUDY_H

#include "energy/energy_params.h"

namespace rfh {

/** Normalised energies of the Section 7 experiments. */
struct LimitStudyResults
{
    /** Realistic best design: 3-entry ORF + split LRF. */
    double realistic = 1.0;
    /** Every access serviced by the LRF. */
    double idealAllLrf = 1.0;
    /** Every access serviced by a 5-entry ORF. */
    double idealAllOrf5 = 1.0;
    /** Oracle per-strand variable ORF size (static estimate). */
    double variableOracle = 1.0;
    /** Variable sizing plus 6 active warps sharing the 8-warp ORF. */
    double fewerActiveWarps = 1.0;
    /** Hardware RFC kept resident across backward branches. */
    double hwResidentPastBackward = 1.0;
    /** Hardware RFC flushed at every backward branch. */
    double hwFlushAtBackward = 1.0;
    /** Idealised rescheduling: 8-entry ORF at 3-entry energy. */
    double sched8EntriesAt3 = 1.0;
    /** Realistic rescheduling estimate: 5 entries at 3-entry energy. */
    double sched5EntriesAt3 = 1.0;
    /** Never flushing the ORF/LRF across deschedules. */
    double neverFlush = 1.0;
};

/** Run every Section 7 experiment over all workloads. */
LimitStudyResults runLimitStudy(const EnergyParams &params = {});

} // namespace rfh

#endif // RFH_COMPILER_LIMIT_STUDY_H
