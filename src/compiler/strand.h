/**
 * @file
 * Strand formation (Section 4.1).
 *
 * A strand is a sequence of instructions in which every dependence on a
 * long-latency instruction comes from an operation issued in a previous
 * strand. Strand endpoints are placed:
 *
 *  - before the first instruction that consumes (or overwrites) a value
 *    produced by a long-latency operation issued in the current strand
 *    (the warp will be descheduled there by the two-level scheduler);
 *  - after every backward branch;
 *  - at the start of every basic block targeted by a backward branch;
 *  - at the start of merge blocks where the set of pending long-latency
 *    operations differs between incoming paths (Figure 5(b)).
 *
 * Values may never be communicated through the ORF or LRF across a
 * strand endpoint. Strands are contiguous ranges of the kernel's layout
 * order; all control flow inside a strand is forward.
 *
 * markEndOfStrand() sets the ISA-visible end-of-strand bit on the last
 * instruction of every strand. Dynamically, a warp synchronises
 * whenever control passes from one strand into another — for layout
 * fallthrough that is exactly the marked instruction; a branch that
 * jumps between strands synchronises as part of the transfer. At a
 * synchronisation point the ORF and LRF become invalid for the warp,
 * and the two-level scheduler deschedules it if any long-latency
 * operation is outstanding.
 */

#ifndef RFH_COMPILER_STRAND_H
#define RFH_COMPILER_STRAND_H

#include <vector>

#include "ir/cfg_analysis.h"
#include "ir/kernel.h"

namespace rfh {

/** Why a strand ended (statistics / debugging). */
enum class StrandEndReason : std::uint8_t {
    LONG_LATENCY,      ///< Dependence on an in-strand long-latency op.
    BACKWARD_BRANCH,   ///< The strand ends with a backward branch.
    BACKWARD_TARGET,   ///< Next block is a backward-branch target.
    MERGE_UNCERTAIN,   ///< Pending long-latency state differs at a merge.
    KERNEL_END,        ///< Kernel exit.
};

/** One strand: a contiguous range of linear instruction indices. */
struct Strand
{
    int firstLin = 0;
    int lastLin = 0;  ///< Inclusive.
    StrandEndReason endReason = StrandEndReason::KERNEL_END;

    int
    size() const
    {
        return lastLin - firstLin + 1;
    }
};

/** Strand-formation options. */
struct StrandOptions
{
    /**
     * Insert an endpoint at merge blocks whose incoming paths disagree
     * about which long-latency operations are pending (the paper's
     * Figure 5(b) rule). Always safe to disable: the consuming
     * instruction still forces an endpoint.
     */
    bool cutAtUncertainMerge = true;

    /**
     * Treat backward branches as strand endpoints (Section 4.1). The
     * Section 7 limit study disables this to measure the value of
     * allocating past backward branches.
     */
    bool cutAtBackwardBranch = true;

    /**
     * End a strand before the first consumer of an in-strand
     * long-latency result (Section 4.1). The Section 7 "never flush"
     * idealisation disables this (upper levels survive deschedules).
     */
    bool cutAtLongLatency = true;
};

/** Computes the strand partition of a kernel. */
class StrandAnalysis
{
  public:
    StrandAnalysis(const Kernel &k, const Cfg &cfg,
                   const StrandOptions &opts = {});

    /** Set the end-of-strand bit on each strand's last instruction. */
    void markEndOfStrand(Kernel &k) const;

    int
    numStrands() const
    {
        return static_cast<int>(strands_.size());
    }

    const Strand &
    strand(int s) const
    {
        return strands_[s];
    }

    /** Strand containing linear instruction @p lin. */
    int
    strandOf(int lin) const
    {
        return strandOf_[lin];
    }

    /** All strands. */
    const std::vector<Strand> &
    strands() const
    {
        return strands_;
    }

  private:
    std::vector<Strand> strands_;
    std::vector<int> strandOf_;
};

} // namespace rfh

#endif // RFH_COMPILER_STRAND_H
