/**
 * @file
 * Linear-scan register allocation (the compilation stage the paper's
 * input has already been through: "PTX assembly code which has been
 * scheduled and register allocated", Section 4.2; algorithm after
 * Poletto & Sarkar, the paper's reference [21]).
 *
 * Kernels may be written with up to kMaxRegs pseudo-registers; this
 * pass renames them onto a smaller architectural budget (Table 2
 * allows 32 per thread) and spills what does not fit to per-thread
 * local memory (modelled as shared-memory slots). The hierarchy
 * allocator then runs on the result, so register pressure effects on
 * the ORF/LRF can be studied end to end.
 */

#ifndef RFH_COMPILER_REGALLOC_H
#define RFH_COMPILER_REGALLOC_H

#include "ir/kernel.h"

namespace rfh {

/** Configuration of the linear-scan pass. */
struct RegAllocOptions
{
    /**
     * Architectural registers available to renamed values. Registers
     * [firstReg, firstReg + numRegs) are used; everything outside the
     * live-range analysis (the conventional R0 thread id and R63
     * parameter base) keeps its name.
     */
    int numRegs = 24;
    int firstReg = 1;
    /** Byte base of the per-thread spill area in shared memory. */
    std::uint32_t spillBase = 0xf000;
};

/** Outcome of one linear-scan run. */
struct RegAllocStats
{
    int liveRanges = 0;
    int spilledRanges = 0;
    int spillLoads = 0;   ///< ld.shared instructions inserted.
    int spillStores = 0;  ///< st.shared instructions inserted.
    int regsUsed = 0;     ///< Distinct architectural registers used.

    bool
    anySpills() const
    {
        return spillLoads + spillStores > 0;
    }
};

/**
 * Rename @p k onto the architectural budget in @p opts, inserting
 * spill code where needed. The transformed kernel computes bit-exactly
 * the same values (the spill slots live in the shared-memory address
 * space above @c spillBase, which well-formed kernels do not touch).
 */
RegAllocStats allocateRegisters(Kernel &k,
                                const RegAllocOptions &opts = {});

} // namespace rfh

#endif // RFH_COMPILER_REGALLOC_H
