/**
 * @file
 * Shared allocation machinery: options, statistics, occupancy
 * timelines, and the energy-savings functions of Figures 6 and 9.
 */

#ifndef RFH_COMPILER_ALLOCATION_H
#define RFH_COMPILER_ALLOCATION_H

#include <vector>

#include "compiler/instances.h"
#include "compiler/strand.h"
#include "energy/energy_model.h"

namespace rfh {

/** Configuration of the software hierarchy allocator. */
struct AllocOptions
{
    /** ORF entries per thread (1..8). */
    int orfEntries = 3;
    /**
     * Price ORF accesses as if the ORF had this many entries (0 = use
     * orfEntries). Section 7's idealised experiments allocate a larger
     * ORF while charging the energy of a smaller one.
     */
    int orfPriceEntries = 0;
    /** Allocate a last result file (three-level hierarchy). */
    bool useLRF = false;
    /** Split the LRF into one bank per operand slot (Section 3.2). */
    bool splitLRF = false;
    /**
     * Let shared-datapath (SFU/MEM/TEX) results enter the LRF. The
     * paper's Figure 4 writes the LRF from the ALU result bus only, so
     * this defaults to false; enabling it models a wider LRF write
     * path (shared-side wire energy applies to those writes).
     */
    bool lrfAllowSharedProducers = false;
    /** Enable partial-range allocation (Section 4.3). */
    bool partialRanges = true;
    /** Enable read-operand allocation (Section 4.4). */
    bool readOperands = true;
    /** Strand-formation rules. */
    StrandOptions strandOptions;
    /**
     * Variable allocation (Section 7): per-strand ORF entry budgets.
     * Empty = every strand may use all orfEntries. When set, strand s
     * may only allocate entries [0, perStrandEntries[s]); extra
     * strands (if the vector is short) fall back to orfEntries.
     */
    std::vector<int> perStrandEntries;
};

/** Outcome statistics of one allocation run. */
struct AllocStats
{
    int strands = 0;
    int valueInstances = 0;
    int readInstances = 0;
    int lrfValues = 0;        ///< Values allocated to the LRF.
    int orfValuesFull = 0;    ///< Values fully allocated to the ORF.
    int orfValuesPartial = 0; ///< Values allocated a partial range.
    int orfReadsFull = 0;     ///< Read operands fully allocated.
    int orfReadsPartial = 0;  ///< Read operands partially allocated.
    int mrfWritesElided = 0;  ///< Defs that skip the MRF entirely.
    double predictedSavingsPJ = 0.0;
    /** Predicted savings per strand (Section 7 oracle study). */
    std::vector<double> strandSavings;

    void
    add(const AllocStats &o)
    {
        strands += o.strands;
        valueInstances += o.valueInstances;
        readInstances += o.readInstances;
        lrfValues += o.lrfValues;
        orfValuesFull += o.orfValuesFull;
        orfValuesPartial += o.orfValuesPartial;
        orfReadsFull += o.orfReadsFull;
        orfReadsPartial += o.orfReadsPartial;
        mrfWritesElided += o.mrfWritesElided;
        predictedSavingsPJ += o.predictedSavingsPJ;
        strandSavings.insert(strandSavings.end(), o.strandSavings.begin(),
                             o.strandSavings.end());
    }
};

/**
 * Occupancy timeline of a small register file level: tracks, per
 * physical entry, the half-open linear-instruction intervals
 * [begin, end) during which the entry holds a live value.
 */
class EntryTimeline
{
  public:
    explicit EntryTimeline(int num_entries);

    int
    numEntries() const
    {
        return static_cast<int>(busy_.size());
    }

    /** @return true if entry @p e is free over [begin, end). */
    bool available(int e, int begin, int end) const;

    /** Mark entry @p e busy over [begin, end). */
    void allocate(int e, int begin, int end);

    /**
     * @return the first free entry over [begin, end) among the first
     * @p limit entries (-1 = all entries), or -1 if none.
     */
    int findFree(int begin, int end, int limit = -1) const;

    /**
     * @return the first entry e such that both e and e+1 are free over
     * [begin, end) within the first @p limit entries, or -1.
     */
    int findFreePair(int begin, int end, int limit = -1) const;

  private:
    struct Interval { int begin; int end; };
    std::vector<std::vector<Interval>> busy_;
};

/**
 * Energy saved by allocating value instance @p vi to the ORF for its
 * first @p num_uses reads (Figure 6, extended with per-datapath wire
 * energy, hammock groups, and wide values). Fewer than all uses models
 * a partial range (Section 4.3), which forces an MRF write.
 *
 * @return savings in pJ; positive means profitable.
 */
double orfValueSavings(const ValueInstance &vi, const EnergyModel &em,
                       int num_uses);

/**
 * Energy saved by allocating read instance @p ri to the ORF for its
 * first @p num_uses reads (Figure 9). The first read always comes from
 * the MRF and deposits the value into the ORF.
 */
double orfReadSavings(const ReadInstance &ri, const EnergyModel &em,
                      int num_uses);

/** Energy saved by allocating value instance @p vi to the LRF. */
double lrfValueSavings(const ValueInstance &vi, const EnergyModel &em);

/**
 * @return true if @p vi may live in the LRF: produced and consumed
 * exclusively by private ALUs, 32 bits wide, and (for a split LRF)
 * consumed through a single operand slot.
 */
bool lrfEligible(const ValueInstance &vi, const Kernel &k, bool split_lrf,
                 bool allow_shared_producers = false);

/** Occupancy interval of a value instance, half-open. */
inline std::pair<int, int>
valueInterval(const ValueInstance &vi, int num_uses)
{
    int begin = vi.firstDefLin();
    int end = begin + 1;
    // Every member def of a hammock group writes the entry, so the
    // reservation must cover each def through its write phase — not
    // just the served uses. A use at lin L only needs [.., L): reads
    // happen before writes, so a new value may take the entry at L.
    for (int d : vi.defLins)
        end = std::max(end, d + 1);
    int n = 0;
    for (const auto &u : vi.uses) {
        if (n++ >= num_uses)
            break;
        end = std::max(end, u.lin);
    }
    return {begin, std::max(end, begin + 1)};
}

/** Occupancy interval of a read instance, half-open. */
inline std::pair<int, int>
readInterval(const ReadInstance &ri, int num_uses)
{
    int begin = ri.firstUseLin();
    int end = begin;
    int n = 0;
    for (const auto &u : ri.uses) {
        if (n++ >= num_uses)
            break;
        end = std::max(end, u.lin);
    }
    return {begin, std::max(end, begin + 1)};
}

} // namespace rfh

#endif // RFH_COMPILER_ALLOCATION_H
