#include "compiler/strand.h"

#include <algorithm>
#include <map>

#include "ir/liveness.h"

namespace rfh {

StrandAnalysis::StrandAnalysis(const Kernel &k, const Cfg &cfg,
                               const StrandOptions &opts)
{
    int nblocks = cfg.numBlocks();
    int ninstrs = k.numInstrs();

    // Cut positions: cutBefore[p] means a strand boundary immediately
    // before linear instruction p. reasonAt records why the strand that
    // ends at p-1 ended.
    std::vector<bool> cut_before(ninstrs + 1, false);
    std::map<int, StrandEndReason> reason_at;
    auto add_cut = [&](int pos, StrandEndReason why) {
        if (pos <= 0 || pos >= ninstrs)
            return;
        if (!cut_before[pos]) {
            cut_before[pos] = true;
            reason_at[pos] = why;
        }
    };

    // Pending long-latency destinations at the end of each block,
    // assuming the forward layout scan's cut placement. ∅ after a cut
    // (every endpoint synchronises outstanding long-latency ops).
    std::vector<RegSet> pending_out(nblocks);
    for (int b = 0; b < nblocks; b++) {
        int start = k.blockStart(b);
        int end = start + static_cast<int>(k.blocks[b].instrs.size()) - 1;

        if (cfg.isBackwardTarget(b) && opts.cutAtBackwardBranch)
            add_cut(start, StrandEndReason::BACKWARD_TARGET);

        // Merge the pending state from layout-earlier predecessors. An
        // edge whose source lies before an existing cut contributes ∅
        // (the path synchronised at that cut).
        RegSet pending;
        if (!cut_before[start]) {
            bool first = true;
            bool differs = false;
            for (int p : cfg.preds(b)) {
                if (p >= b)
                    continue;  // backward edge; target already cut
                int pend_lin = k.blockStart(p) +
                    static_cast<int>(k.blocks[p].instrs.size()) - 1;
                RegSet contrib;
                bool synced = false;
                for (int c = pend_lin + 1; c <= start; c++) {
                    if (cut_before[c]) {
                        synced = true;
                        break;
                    }
                }
                if (!synced)
                    contrib = pending_out[p];
                if (first) {
                    pending = contrib;
                    first = false;
                } else if (contrib != pending) {
                    differs = true;
                    pending |= contrib;
                }
            }
            if (differs && opts.cutAtUncertainMerge) {
                add_cut(start, StrandEndReason::MERGE_UNCERTAIN);
                pending.reset();
            }
        }
        if (cut_before[start])
            pending.reset();

        for (int lin = start; lin <= end; lin++) {
            const Instruction &in = k.instr(lin);
            RegSet touched = usedRegs(in) | definedRegs(in);
            if ((touched & pending).any() && opts.cutAtLongLatency) {
                add_cut(lin, StrandEndReason::LONG_LATENCY);
                pending.reset();
            }
            if (in.longLatency() && in.dst)
                pending |= definedRegs(in);
            if (in.op == Opcode::BRA && in.branchTarget <= b &&
                opts.cutAtBackwardBranch) {
                add_cut(lin + 1, StrandEndReason::BACKWARD_BRANCH);
                pending.reset();
            }
        }
        pending_out[b] = pending;
    }
    // Build strands from cut positions.
    strandOf_.assign(ninstrs, 0);
    int first = 0;
    for (int pos = 1; pos <= ninstrs; pos++) {
        bool boundary = pos == ninstrs || cut_before[pos];
        if (!boundary)
            continue;
        Strand s;
        s.firstLin = first;
        s.lastLin = pos - 1;
        auto it = reason_at.find(pos);
        s.endReason = pos == ninstrs ? StrandEndReason::KERNEL_END
                                     : it->second;
        for (int lin = first; lin < pos; lin++)
            strandOf_[lin] = static_cast<int>(strands_.size());
        strands_.push_back(s);
        first = pos;
    }

}

void
StrandAnalysis::markEndOfStrand(Kernel &k) const
{
    for (const Strand &s : strands_)
        k.instr(s.lastLin).endOfStrand = true;
}

} // namespace rfh
