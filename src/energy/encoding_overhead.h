/**
 * @file
 * Instruction-encoding overhead model (Section 6.5).
 *
 * The software-managed hierarchy adds information to each instruction:
 * an end-of-strand bit, and (pessimistically) extra operand bits when
 * the register namespace cannot absorb the hierarchy levels. This model
 * reproduces the paper's high-level accounting: fetch+decode consume
 * ~10% of chip-wide dynamic power, extra bits increase fetch/decode
 * energy linearly, and the register file system is sized so that its
 * measured savings translate to chip-wide savings.
 */

#ifndef RFH_ENERGY_ENCODING_OVERHEAD_H
#define RFH_ENERGY_ENCODING_OVERHEAD_H

namespace rfh {

/** Chip-level encoding overhead model. */
struct EncodingOverheadModel
{
    /** Fraction of chip dynamic power spent on fetch + decode. */
    double fetchDecodeShare = 0.10;
    /**
     * Fraction of chip dynamic power spent on the register file system.
     * Derived from the paper: a 54% register-file saving equals 5.8%
     * chip-wide, so the register file is ~10.7% of chip power.
     */
    double registerFileShare = 0.058 / 0.54;
    /** Baseline instruction width in bits. */
    int instructionBits = 32;

    /** Fractional increase in fetch/decode energy for @p extra_bits. */
    double
    fetchDecodeIncrease(int extra_bits) const
    {
        return static_cast<double>(extra_bits) / instructionBits;
    }

    /** Chip-wide overhead (fraction of chip power) of @p extra_bits. */
    double
    chipOverhead(int extra_bits) const
    {
        return fetchDecodeShare * fetchDecodeIncrease(extra_bits);
    }

    /**
     * Net chip-wide dynamic-power savings.
     *
     * @param rf_savings fraction of register-file energy saved (e.g.
     *        0.54 for the best software configuration).
     * @param extra_bits extra encoding bits per instruction (1 when the
     *        register namespace absorbs level encoding; up to 5 in the
     *        paper's pessimistic scenario).
     */
    double
    netChipSavings(double rf_savings, int extra_bits) const
    {
        return registerFileShare * rf_savings - chipOverhead(extra_bits);
    }
};

} // namespace rfh

#endif // RFH_ENERGY_ENCODING_OVERHEAD_H
