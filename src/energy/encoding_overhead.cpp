// Header-only model; this translation unit exists so the target has a
// corresponding object and the header stays self-contained.
#include "energy/encoding_overhead.h"
