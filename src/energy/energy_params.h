/**
 * @file
 * Energy-model constants from the paper (Tables 3 and 4).
 *
 * All storage-access energies are per 128-bit access (one register for
 * four SIMT lanes); the model divides by four to charge per 32-bit
 * operand. Wire energy is charged per 32-bit operand transported over
 * the distance between a register-file level and the consuming or
 * producing datapath (Section 5.2).
 */

#ifndef RFH_ENERGY_ENERGY_PARAMS_H
#define RFH_ENERGY_ENERGY_PARAMS_H

namespace rfh {

/** Maximum ORF entries per thread modelled (Table 3). */
inline constexpr int kMaxOrfEntries = 8;

/** Tunable energy/technology parameters (defaults = paper values). */
struct EnergyParams
{
    // Table 4: MRF SRAM banks, per 128-bit access (pJ).
    double mrfReadPJ = 8.0;
    double mrfWritePJ = 11.0;

    // Table 4: LRF flip-flop array, per 128-bit access (pJ). These equal
    // the 1-entry ORF row of Table 3.
    double lrfReadPJ = 0.7;
    double lrfWritePJ = 2.0;

    // Table 4: wire energy for a 32-bit operand (pJ/mm) and distances
    // (mm) between each level and the private / shared datapaths.
    double wirePJPerMM = 1.9;
    double mrfDistPrivateMM = 1.0;
    double mrfDistSharedMM = 1.0;
    double orfDistPrivateMM = 0.2;
    double orfDistSharedMM = 0.4;
    double lrfDistPrivateMM = 0.05;
    /**
     * Wire distance for writing the LRF from the shared datapath.
     * Only used when the allocator is configured to let SFU/MEM/TEX
     * results enter the LRF (not the paper's Figure 4 organisation,
     * where the LRF hangs off the ALU result bus); modelled like the
     * ORF's shared-side distance.
     */
    double lrfDistSharedMM = 0.4;

    /**
     * Wire-distance multiplier applied to the LRF when it is split into
     * per-operand-slot banks (Section 6.4 evaluates this tradeoff; the
     * paper finds the effect is under 1% of baseline energy).
     */
    double splitLrfWireFactor = 1.5;

    /** Table 3: ORF read energy (pJ / 128 bits) for a given size. */
    static double orfReadPJ(int entries_per_thread);

    /** Table 3: ORF write energy (pJ / 128 bits) for a given size. */
    static double orfWritePJ(int entries_per_thread);
};

} // namespace rfh

#endif // RFH_ENERGY_ENERGY_PARAMS_H
