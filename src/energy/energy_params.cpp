#include "energy/energy_params.h"

#include <cassert>

namespace rfh {

namespace {

// Table 3: per-128-bit ORF access energy vs entries per thread, pJ.
constexpr double orfRead[kMaxOrfEntries + 1] = {
    0.0, 0.7, 1.2, 1.2, 1.9, 2.0, 2.0, 2.4, 3.4,
};
constexpr double orfWrite[kMaxOrfEntries + 1] = {
    0.0, 2.0, 3.8, 4.4, 6.1, 6.0, 6.7, 7.7, 10.9,
};

} // namespace

double
EnergyParams::orfReadPJ(int entries_per_thread)
{
    assert(entries_per_thread >= 1 && entries_per_thread <= kMaxOrfEntries);
    return orfRead[entries_per_thread];
}

double
EnergyParams::orfWritePJ(int entries_per_thread)
{
    assert(entries_per_thread >= 1 && entries_per_thread <= kMaxOrfEntries);
    return orfWrite[entries_per_thread];
}

} // namespace rfh
