#include "energy/energy_model.h"

#include <cassert>

namespace rfh {

EnergyModel::EnergyModel(const EnergyParams &params, int orf_entries,
                         bool split_lrf)
    : params_(params), orfEntries_(orf_entries), splitLrf_(split_lrf)
{
    assert(orf_entries >= 1 && orf_entries <= kMaxOrfEntries);
}

double
EnergyModel::accessEnergy(Level level, bool write) const
{
    // Storage arrays are 128 bits wide (one register for 4 lanes);
    // charge one quarter per 32-bit operand.
    switch (level) {
      case Level::MRF:
        return (write ? params_.mrfWritePJ : params_.mrfReadPJ) / 4.0;
      case Level::ORF:
        return (write ? EnergyParams::orfWritePJ(orfEntries_)
                      : EnergyParams::orfReadPJ(orfEntries_)) / 4.0;
      case Level::LRF:
        return (write ? params_.lrfWritePJ : params_.lrfReadPJ) / 4.0;
    }
    return 0.0;
}

double
EnergyModel::wireEnergy(Level level, Datapath dp) const
{
    double dist = 0.0;
    switch (level) {
      case Level::MRF:
        dist = dp == Datapath::PRIVATE ? params_.mrfDistPrivateMM
                                       : params_.mrfDistSharedMM;
        break;
      case Level::ORF:
        dist = dp == Datapath::PRIVATE ? params_.orfDistPrivateMM
                                       : params_.orfDistSharedMM;
        break;
      case Level::LRF:
        // LRF reads only come from the private datapath (Section 3.2);
        // shared-side traffic exists only for writes when shared
        // producers are allowed into the LRF.
        dist = dp == Datapath::PRIVATE
            ? params_.lrfDistPrivateMM *
                  (splitLrf_ ? params_.splitLrfWireFactor : 1.0)
            : params_.lrfDistSharedMM;
        break;
    }
    return dist * params_.wirePJPerMM;
}

} // namespace rfh
