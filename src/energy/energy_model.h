/**
 * @file
 * Per-operand energy model for the register file hierarchy.
 *
 * Given the technology parameters and a configured ORF size, computes
 * the energy of reading/writing one 32-bit operand at each level, split
 * into storage-access and wire components, for both the private (ALU)
 * and shared (SFU/MEM/TEX) datapaths. The compiler's allocation savings
 * functions (Figures 6 and 9) and the evaluation harness both consume
 * this model so that allocation decisions and reported results are
 * always consistent.
 */

#ifndef RFH_ENERGY_ENERGY_MODEL_H
#define RFH_ENERGY_ENERGY_MODEL_H

#include "energy/energy_params.h"
#include "ir/instruction.h"

namespace rfh {

/** Which datapath an operand travels to/from (Section 3.2). */
enum class Datapath : int {
    PRIVATE = 0,  ///< Per-lane ALUs (may access the LRF).
    SHARED = 1,   ///< SFU / MEM / TEX units (ORF and MRF only).
};

/** @return the datapath of a function-unit class. */
inline Datapath
datapathOf(UnitClass uc)
{
    return isSharedUnit(uc) ? Datapath::SHARED : Datapath::PRIVATE;
}

/** Energy model for one hierarchy configuration. */
class EnergyModel
{
  public:
    /**
     * @param params technology constants.
     * @param orf_entries ORF entries per thread (1..8); a configuration
     *        without an ORF may pass 1 (the value is only used for ORF
     *        accesses, which then never occur).
     * @param split_lrf apply the split-LRF wire factor to LRF accesses.
     */
    EnergyModel(const EnergyParams &params, int orf_entries,
                bool split_lrf = false);

    /** Storage-array energy of one 32-bit access (pJ). */
    double accessEnergy(Level level, bool write) const;

    /** Wire energy of moving one 32-bit operand (pJ). */
    double wireEnergy(Level level, Datapath dp) const;

    /** Total (access + wire) read energy per 32-bit operand (pJ). */
    double
    readEnergy(Level level, Datapath dp) const
    {
        return accessEnergy(level, false) + wireEnergy(level, dp);
    }

    /** Total (access + wire) write energy per 32-bit operand (pJ). */
    double
    writeEnergy(Level level, Datapath dp) const
    {
        return accessEnergy(level, true) + wireEnergy(level, dp);
    }

    const EnergyParams &
    params() const
    {
        return params_;
    }

    int
    orfEntries() const
    {
        return orfEntries_;
    }

  private:
    EnergyParams params_;
    int orfEntries_;
    bool splitLrf_;
};

} // namespace rfh

#endif // RFH_ENERGY_ENERGY_MODEL_H
