/**
 * @file
 * Wire protocol of the batch compile/sim service (`rfhc serve`).
 *
 * Requests and responses are newline-delimited JSON objects, one per
 * line, over stdio or a Unix socket. A run request names either an
 * inline RPTX kernel (`"kernel"`) or a registry workload
 * (`"workload"`), plus the experiment configuration; its response
 * carries the exact outcomeToJson() document that direct `rfhc run
 * --json` invocation prints — byte-identical, so clients can switch
 * between the CLI and the service without re-baselining anything.
 *
 * Errors are structured (`{"id":…,"ok":false,"error":{"code":…,
 * "message":…}}`) and always carry position/context: JSON errors
 * quote the parser's `offset N`, kernel errors the RPTX parser's
 * `line N`, unknown-scheme errors the valid token set. The full
 * schema is documented in docs/service.md.
 */

#ifndef RFH_SERVICE_PROTOCOL_H
#define RFH_SERVICE_PROTOCOL_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"

namespace rfh {

/** Machine-readable error category of a failed request. */
enum class ServiceErrorCode
{
    PARSE_ERROR,       ///< Request line is not valid JSON.
    BAD_REQUEST,       ///< Valid JSON, invalid schema (message names the field).
    BAD_KERNEL,        ///< Inline RPTX failed to parse ("line N: …").
    UNKNOWN_WORKLOAD,  ///< No registry workload of that name.
    UNKNOWN_SCHEME,    ///< Scheme token not in the valid set.
    DEADLINE_EXCEEDED, ///< Deadline expired before or during the run.
    OVERLOADED,        ///< Admission queue full; request was shed.
    SHUTTING_DOWN,     ///< Submitted after drain began.
    EXEC_ERROR,        ///< The run itself failed verification.
};

/** Wire token of @p code ("parse_error", "overloaded", …). */
std::string_view serviceErrorCodeName(ServiceErrorCode code);

/** One structured error, plus optional extra context fields. */
struct ServiceError
{
    ServiceErrorCode code = ServiceErrorCode::BAD_REQUEST;
    std::string message;
    /** Extra context key → raw-JSON value (e.g. "queue_capacity":"64"). */
    std::vector<std::pair<std::string, std::string>> context;
};

/** Request kinds. */
enum class ServiceOp
{
    RUN,       ///< Compile + simulate one kernel (the default).
    PING,      ///< Liveness probe; answered inline.
    SHUTDOWN,  ///< Begin graceful drain.
    STATS,     ///< Snapshot of service + cache counters; answered inline.
};

/** One parsed request line. */
struct ServiceRequest
{
    /** Client correlation id, re-serialised for the response ("null"
     *  when absent; any JSON scalar is accepted). */
    std::string idJson = "null";
    ServiceOp op = ServiceOp::RUN;
    /** Inline RPTX text (empty when `workload` names a registry entry). */
    std::string kernelText;
    /** Registry workload name (empty when `kernel` is inline). */
    std::string workload;
    Scheme scheme = Scheme::SW_THREE_LEVEL;
    int entries = 3;
    int warps = 8;
    ExecEngine engine = ExecEngine::AUTO;
    bool splitLRF = true;
    bool partialRanges = true;
    bool readOperands = true;
    /**
     * Also run the cycle-level SM pipeline and attach IPC / stall
     * stats to the result ("perf" object; schemes without pipeline
     * accounting fail the run with EXEC_ERROR).
     */
    bool perf = false;
    /** Relative deadline in milliseconds; unset = no deadline. */
    std::optional<double> deadlineMs;

    /** The experiment configuration this request describes. */
    ExperimentConfig config() const;
};

/** parseServiceRequest outcome: a request or a structured error. */
struct ParsedRequest
{
    bool ok = false;
    ServiceRequest request;
    ServiceError error;
};

/**
 * Parse one NDJSON request line. Strict: unknown fields, wrong field
 * types, out-of-range values, and missing/conflicting kernel sources
 * all produce BAD_REQUEST errors naming the offending field.
 */
ParsedRequest parseServiceRequest(const std::string &line);

/**
 * Canonical re-serialization of a parsed request. The router forwards
 * client lines to workers with a router-assigned id; since clients may
 * order fields arbitrarily, it re-serialises through this (id first,
 * then every field in a fixed order) rather than patching text.
 * parseServiceRequest(serviceRequestToJson(r)) reproduces r exactly.
 */
std::string serviceRequestToJson(const ServiceRequest &req);

/**
 * Scheme wire tokens, resolved against the SchemeRegistry: every
 * registered backend's token is accepted ("baseline", "hw2", ...,
 * "ccrfc", "regdem", "greener", plus any runtime registrations).
 */
std::optional<Scheme> schemeFromToken(const std::string &token);
std::string_view schemeToken(Scheme s);

/** Engine wire tokens: auto, direct, replay. */
std::optional<ExecEngine> engineFromToken(const std::string &token);

/** Success envelope: {"id":…,"ok":true,"result":<resultJson>}. */
std::string makeResultLine(const std::string &idJson,
                           const std::string &resultJson);

/** Error envelope: {"id":…,"ok":false,"error":{…}}. */
std::string makeErrorLine(const std::string &idJson,
                          const ServiceError &err);

/** Control-op acknowledgement: {"id":…,"ok":true,"op":"pong"|…}. */
std::string makeAckLine(const std::string &idJson,
                        const std::string &op);

} // namespace rfh

#endif // RFH_SERVICE_PROTOCOL_H
