/**
 * @file
 * Fleet-backed corpus runs: stream the corpus request population
 * through `rfhc serve` (one worker) or the `rfhc router` shard fleet
 * and fold the responses into the same streaming aggregate the local
 * runner produces.
 *
 * Kernels are generated locally (the scenario profiles are
 * deterministic), shipped as inline RPTX text, and executed remotely;
 * samples are extracted from the result documents and folded through
 * the shared CorpusAccumulator in canonical (kernel, cell) order.
 * Because every folded value is either an exact integer count or the
 * wire-rounded energy ratio (see core/stats.h), the aggregate JSON is
 * byte-identical to a local runCorpus() of the same configuration —
 * for any connection count and any shard layout.
 */

#ifndef RFH_SERVICE_CORPUS_CLIENT_H
#define RFH_SERVICE_CORPUS_CLIENT_H

#include <string>

#include "core/corpus.h"

namespace rfh {

/** Transport knobs of a fleet corpus run. */
struct CorpusClientOptions
{
    /** Unix socket of the server or router front end. */
    std::string socketPath = "/tmp/rfhc.sock";
    /** Concurrent client connections. */
    int connections = 4;
    /** Retries per request on `overloaded` shedding. */
    int maxRetries = 8;
};

/**
 * Run corpus configuration @p cfg against the fleet at
 * @p opts.socketPath. Transport failures and non-overload service
 * errors surface as folded cell errors (mirroring local run errors);
 * connection loss fails the whole run. @return false with @p err on
 * configuration or transport failure.
 */
bool runCorpusRemote(const CorpusConfig &cfg,
                     const CorpusClientOptions &opts, CorpusResult &out,
                     std::string *err);

} // namespace rfh

#endif // RFH_SERVICE_CORPUS_CLIENT_H
