#include "service/router.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/json.h"
#include "core/manifest.h"
#include "core/memo.h"
#include "core/metrics.h"
#include "core/timing.h"
#include "ir/parser.h"
#include "service/protocol.h"
#include "workloads/registry.h"

namespace rfh {

namespace {

/** Registry mirror of the router counters (one-time registration). */
struct RouterMetrics
{
    Counter &routed =
        globalMetrics().counter("service.cache.router_routed");
    Counter &rerouted =
        globalMetrics().counter("service.cache.router_rerouted");
    Counter &restarts =
        globalMetrics().counter("service.cache.router_restarts");
    Counter &failed =
        globalMetrics().counter("service.cache.router_failed");
};

RouterMetrics &
routerMetrics()
{
    static RouterMetrics m;
    return m;
}

/** FNV-1a 64-bit over raw bytes. */
std::uint64_t
fnv64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Ring position of virtual node @p v of worker @p worker. */
std::uint64_t
ringHash(int worker, int v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "w%d:v%d", worker, v);
    return fnv64(buf);
}

bool
sendLine(int fd, const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readLine(int fd, std::string &buf, std::string &line)
{
    for (;;) {
        std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf, 0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
}

/** Recursive JsonValue re-serialization (for merged stats fan-outs). */
void
writeValue(JsonWriter &w, const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::NUL:
        w.rawValue("null");
        break;
      case JsonValue::Type::BOOL:
        w.value(v.boolean);
        break;
      case JsonValue::Type::NUMBER:
        // Counters are integral; print them without a decimal point.
        if (v.number == static_cast<double>(
                            static_cast<long long>(v.number))) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%lld",
                          static_cast<long long>(v.number));
            w.rawValue(buf);
        } else {
            w.value(v.number);
        }
        break;
      case JsonValue::Type::STRING:
        w.value(v.string);
        break;
      case JsonValue::Type::ARRAY:
        w.beginArray();
        for (const JsonValue &e : v.array)
            writeValue(w, e);
        w.endArray();
        break;
      case JsonValue::Type::OBJECT:
        w.beginObject();
        for (const auto &[k, e] : v.object) {
            w.key(k);
            writeValue(w, e);
        }
        w.endObject();
        break;
    }
}

/**
 * Merge one worker's stats object into the fleet aggregate: numbers
 * add, booleans OR (the `attached` flag), objects recurse. Keys keep
 * first-seen order, so the merged document is deterministic.
 */
void
mergeStats(JsonValue &into, const JsonValue &from)
{
    if (!from.isObject())
        return;
    if (!into.isObject()) {
        into = JsonValue{};
        into.type = JsonValue::Type::OBJECT;
    }
    for (const auto &[key, value] : from.object) {
        JsonValue *slot = nullptr;
        for (auto &[k, v] : into.object)
            if (k == key) {
                slot = &v;
                break;
            }
        if (!slot) {
            into.object.emplace_back(key, value);
            continue;
        }
        if (value.isNumber() && slot->isNumber())
            slot->number += value.number;
        else if (value.type == JsonValue::Type::BOOL &&
                 slot->type == JsonValue::Type::BOOL)
            slot->boolean = slot->boolean || value.boolean;
        else if (value.isObject())
            mergeStats(*slot, value);
    }
}

/** One accepted client connection. */
struct ClientConn
{
    int fd = -1;
    std::mutex writeMu;
    std::thread reader;
};

using Clock = std::chrono::steady_clock;

} // namespace

// ---------------------------------------------------------------------
// RouterImpl
// ---------------------------------------------------------------------

struct RouterImpl
{
    enum class WorkerState { DOWN, UP };

    struct Worker
    {
        int id = -1;
        std::string sock;
        pid_t pid = -1;
        int fd = -1;
        WorkerState state = WorkerState::DOWN;
        int restarts = 0;
        double backoffMs = 0.0;
        Clock::time_point nextRestartAt{};
        Clock::time_point nextPingAt{};
        std::thread reader;
        std::mutex writeMu;
    };

    struct StatsAgg
    {
        std::string origId;
        std::shared_ptr<ClientConn> client;
        int outstanding = 0;
        JsonValue merged;
    };

    struct Pending
    {
        enum class Kind { RUN, PING, STATS };
        Kind kind = Kind::RUN;
        std::string origId = "null";
        ServiceRequest request;
        std::uint64_t fp = 0;
        std::shared_ptr<ClientConn> client;
        int worker = -1;
        int attempts = 1;
        std::shared_ptr<StatsAgg> agg;
    };

    explicit RouterImpl(const RouterOptions &o) : opts(o)
    {
        if (opts.workers < 1)
            opts.workers = 1;
        if (opts.virtualNodes < 1)
            opts.virtualNodes = 1;
        if (opts.maxRouteAttempts < 1)
            opts.maxRouteAttempts = 1;
    }

    RouterOptions opts;
    std::string exe;
    std::vector<std::unique_ptr<Worker>> workers;
    /** (position, worker) sorted by position. */
    std::vector<std::pair<std::uint64_t, int>> ring;
    std::map<std::string, std::uint64_t> workloadFp;

    int listenFd = -1;
    std::thread acceptThread;
    std::thread supervisorThread;

    std::mutex mu;
    std::unordered_map<std::uint64_t, Pending> pending;
    std::unordered_map<std::uint64_t, std::uint64_t> inlineFp;
    std::uint64_t nextRid = 1;
    RouterStats stats;
    std::list<std::shared_ptr<ClientConn>> conns;
    std::condition_variable pendingDrained;

    std::atomic<bool> admitting{true};
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopAccept{false};
    std::atomic<bool> stopSupervisor{false};
    bool started = false;
    bool drained = false;

    std::mutex stopMu;
    std::condition_variable stopCv;
    bool stopRequested = false;

    // ---- lifecycle -------------------------------------------------

    bool
    start()
    {
        exe = opts.workerExe;
        if (exe.empty())
            exe = "/proc/self/exe";
        std::string dir = opts.socketDir;
        if (dir.empty()) {
            std::filesystem::path p(opts.socketPath);
            dir = p.has_parent_path() ? p.parent_path().string() : ".";
        }

        workers.reserve(static_cast<std::size_t>(opts.workers));
        for (int i = 0; i < opts.workers; i++) {
            auto w = std::make_unique<Worker>();
            w->id = i;
            w->sock = dir + "/rfhc-worker-" + std::to_string(::getpid()) +
                "-" + std::to_string(i) + ".sock";
            w->backoffMs = opts.restartBackoffMs;
            workers.push_back(std::move(w));
        }
        for (int i = 0; i < opts.workers; i++)
            for (int v = 0; v < opts.virtualNodes; v++)
                ring.emplace_back(ringHash(i, v), i);
        std::sort(ring.begin(), ring.end());

        // Fingerprint every registry workload once so routing a
        // workload request is a map lookup, not a hash of its text.
        for (const Workload &w : allWorkloads())
            workloadFp[w.name] = kernelFingerprint(w.kernel);

        for (auto &w : workers) {
            if (!bringUp(*w)) {
                std::fprintf(stderr,
                             "rfhc router: worker %d failed to start\n",
                             w->id);
                teardownFleet();
                return false;
            }
        }

        if (!listen()) {
            teardownFleet();
            return false;
        }
        acceptThread = std::thread([this] { acceptLoop(); });
        supervisorThread = std::thread([this] { supervisorLoop(); });
        started = true;
        return true;
    }

    bool
    listen()
    {
        if (opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
            std::fprintf(stderr,
                         "rfhc router: socket path too long: %s\n",
                         opts.socketPath.c_str());
            return false;
        }
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0) {
            std::perror("rfhc router: socket");
            return false;
        }
        sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(opts.socketPath.c_str());
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) < 0 ||
            ::listen(listenFd, 64) < 0) {
            std::fprintf(stderr,
                         "rfhc router: cannot listen on %s: %s\n",
                         opts.socketPath.c_str(), std::strerror(errno));
            ::close(listenFd);
            listenFd = -1;
            return false;
        }
        std::fprintf(stderr, "rfhc router: listening on %s (%d workers)\n",
                     opts.socketPath.c_str(), opts.workers);
        return true;
    }

    // ---- worker lifecycle ------------------------------------------

    /** Fork+exec one `rfhc serve` child for @p w. */
    bool
    spawn(Worker &w)
    {
        std::vector<std::string> args = {
            exe,       "serve",
            "--socket", w.sock,
            "--queue",  std::to_string(opts.queueCapacity),
            "--batch",  std::to_string(opts.batchMax),
        };
        if (!opts.cacheDir.empty()) {
            args.push_back("--cache-dir");
            args.push_back(opts.cacheDir);
            args.push_back("--cache-max-bytes");
            args.push_back(std::to_string(opts.cacheMaxBytes));
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            std::perror("rfhc router: fork");
            return false;
        }
        if (pid == 0) {
            if (opts.workerThreads > 0)
                ::setenv("RFH_THREADS",
                         std::to_string(opts.workerThreads).c_str(), 1);
            // Workers must not inherit the router's manifest/trace
            // destinations; their own session manifests are opt-in.
            ::unsetenv("RFH_MANIFEST");
            ::unsetenv("RFH_TRACE_EVENTS");
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(exe.c_str(), argv.data());
            std::perror("rfhc router: execv");
            ::_exit(127);
        }
        w.pid = pid;
        return true;
    }

    /** Connect to @p w's socket, retrying while the child boots. */
    int
    connectTo(const Worker &w)
    {
        if (w.sock.size() >= sizeof(sockaddr_un{}.sun_path))
            return -1;
        for (int attempt = 0; attempt < 100; attempt++) {
            int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                return -1;
            sockaddr_un addr = {};
            addr.sun_family = AF_UNIX;
            std::strncpy(addr.sun_path, w.sock.c_str(),
                         sizeof(addr.sun_path) - 1);
            if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                return fd;
            ::close(fd);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        return -1;
    }

    /**
     * Spawn + connect + synchronous ping + reader start. The caller
     * must have joined any previous reader of @p w.
     */
    bool
    bringUp(Worker &w)
    {
        if (!spawn(w))
            return false;
        int fd = connectTo(w);
        if (fd < 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
            return false;
        }
        // Synchronous health check before the reader owns the fd.
        std::string buf, line;
        if (!sendLine(fd, R"({"id":0,"op":"ping"})") ||
            !readLine(fd, buf, line) ||
            line.find("\"pong\"") == std::string::npos) {
            ::close(fd);
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
            return false;
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            w.fd = fd;
            w.state = WorkerState::UP;
            w.nextPingAt = Clock::now() +
                std::chrono::milliseconds(
                    static_cast<int>(opts.pingIntervalMs));
        }
        w.reader = std::thread([this, &w] { workerReadLoop(w); });
        return true;
    }

    void
    workerReadLoop(Worker &w)
    {
        std::string buf, line;
        int fd = w.fd;
        while (readLine(fd, buf, line))
            if (!line.empty())
                onWorkerLine(w.id, line);
        onWorkerDown(w.id);
    }

    /**
     * Mark @p wk down and fail its in-flight requests over to ring
     * successors. Idempotent: the reader EOF, a failed forward, and
     * the supervisor's reap can all race into here.
     */
    void
    onWorkerDown(int wk)
    {
        std::vector<std::uint64_t> orphans;
        {
            std::lock_guard<std::mutex> lk(mu);
            Worker &w = *workers[wk];
            if (w.state != WorkerState::UP)
                return;
            w.state = WorkerState::DOWN;
            w.nextRestartAt = Clock::now() +
                std::chrono::milliseconds(
                    static_cast<int>(w.backoffMs));
            w.backoffMs = std::min(w.backoffMs * 2,
                                   opts.restartBackoffMaxMs);
            // Unblock the reader and any forwarder; the fd itself is
            // closed by the supervisor after joining the reader, so
            // no concurrent send can hit a recycled descriptor.
            ::shutdown(w.fd, SHUT_RDWR);
            for (const auto &[rid, p] : pending)
                if (p.worker == wk)
                    orphans.push_back(rid);
        }
        if (!stopping.load())
            std::fprintf(stderr,
                         "rfhc router: worker %d down; re-routing %d "
                         "in-flight request(s)\n",
                         wk, static_cast<int>(orphans.size()));
        for (std::uint64_t rid : orphans)
            reroute(rid);
    }

    void
    supervisorLoop()
    {
        while (!stopSupervisor.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            for (auto &wp : workers) {
                Worker &w = *wp;
                reap(w);
                WorkerState st;
                {
                    std::lock_guard<std::mutex> lk(mu);
                    st = w.state;
                }
                if (st == WorkerState::UP)
                    healthCheck(w);
                else if (!stopping.load())
                    maybeRestart(w);
            }
        }
    }

    /** Collect the child if it exited; a dead pid means worker down. */
    void
    reap(Worker &w)
    {
        if (w.pid <= 0)
            return;
        int status = 0;
        pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r != w.pid)
            return;
        w.pid = -1;
        onWorkerDown(w.id);
    }

    /** Send a correlated ping; a send failure marks the worker down. */
    void
    healthCheck(Worker &w)
    {
        std::uint64_t rid;
        {
            std::lock_guard<std::mutex> lk(mu);
            if (w.state != WorkerState::UP ||
                Clock::now() < w.nextPingAt)
                return;
            w.nextPingAt = Clock::now() +
                std::chrono::milliseconds(
                    static_cast<int>(opts.pingIntervalMs));
            rid = nextRid++;
            Pending p;
            p.kind = Pending::Kind::PING;
            p.worker = w.id;
            pending.emplace(rid, std::move(p));
            stats.pings++;
        }
        std::string line =
            "{\"id\":" + std::to_string(rid) + ",\"op\":\"ping\"}";
        bool sent;
        {
            std::lock_guard<std::mutex> wl(w.writeMu);
            sent = sendLine(w.fd, line);
        }
        if (!sent)
            onWorkerDown(w.id);
    }

    /** Respawn a down worker once its backoff window has passed. */
    void
    maybeRestart(Worker &w)
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            if (w.state != WorkerState::DOWN ||
                w.restarts >= opts.maxRestarts ||
                Clock::now() < w.nextRestartAt)
                return;
        }
        if (w.pid > 0) {
            // The process is alive but its connection broke (hung or
            // wedged): replace it.
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
        if (w.reader.joinable())
            w.reader.join();
        {
            std::lock_guard<std::mutex> wl(w.writeMu);
            if (w.fd >= 0)
                ::close(w.fd);
            w.fd = -1;
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            w.restarts++;
            stats.restarts++;
        }
        routerMetrics().restarts.add();
        std::fprintf(stderr,
                     "rfhc router: restarting worker %d (attempt %d)\n",
                     w.id, w.restarts);
        if (!bringUp(w)) {
            std::lock_guard<std::mutex> lk(mu);
            w.nextRestartAt = Clock::now() +
                std::chrono::milliseconds(
                    static_cast<int>(w.backoffMs));
            w.backoffMs = std::min(w.backoffMs * 2,
                                   opts.restartBackoffMaxMs);
        }
    }

    // ---- routing ---------------------------------------------------

    /**
     * The routing key: the same structural fingerprint the memo and
     * disk caches use, so one kernel's requests always land on the
     * same (live) worker and hit its warm caches. Unparsable inline
     * kernels hash their text — the worker answers the parse error,
     * deterministically.
     */
    std::uint64_t
    requestFingerprint(const ServiceRequest &req)
    {
        if (!req.workload.empty()) {
            auto it = workloadFp.find(req.workload);
            return it != workloadFp.end() ? it->second
                                          : fnv64(req.workload);
        }
        std::uint64_t h = fnv64(req.kernelText);
        {
            std::lock_guard<std::mutex> lk(mu);
            auto it = inlineFp.find(h);
            if (it != inlineFp.end())
                return it->second;
        }
        ParseResult parsed = parseKernel(req.kernelText);
        std::uint64_t fp =
            parsed.ok ? kernelFingerprint(parsed.kernel) : h;
        {
            std::lock_guard<std::mutex> lk(mu);
            if (inlineFp.size() >= 4096)
                inlineFp.clear();
            inlineFp[h] = fp;
        }
        return fp;
    }

    /** First live worker at or after @p fp on the ring (mu held). */
    int
    pickWorker(std::uint64_t fp)
    {
        auto it = std::lower_bound(
            ring.begin(), ring.end(),
            std::make_pair(fp, -1));
        for (std::size_t step = 0; step < ring.size(); step++) {
            if (it == ring.end())
                it = ring.begin();
            if (workers[static_cast<std::size_t>(it->second)]->state ==
                WorkerState::UP)
                return it->second;
            ++it;
        }
        return -1;
    }

    std::string
    canonicalLine(const ServiceRequest &req, std::uint64_t rid)
    {
        ServiceRequest copy = req;
        copy.idJson = std::to_string(rid);
        return serviceRequestToJson(copy);
    }

    bool
    forwardTo(int wk, const std::string &line)
    {
        Worker &w = *workers[static_cast<std::size_t>(wk)];
        std::lock_guard<std::mutex> wl(w.writeMu);
        if (w.fd < 0)
            return false;
        return sendLine(w.fd, line);
    }

    void
    respond(const std::shared_ptr<ClientConn> &cc,
            const std::string &line)
    {
        if (!cc)
            return;
        std::lock_guard<std::mutex> lk(cc->writeMu);
        sendLine(cc->fd, line);
    }

    void
    respondError(const std::shared_ptr<ClientConn> &cc,
                 const std::string &idJson, ServiceErrorCode code,
                 std::string message,
                 std::vector<std::pair<std::string, std::string>>
                     context = {})
    {
        ServiceError err;
        err.code = code;
        err.message = std::move(message);
        err.context = std::move(context);
        respond(cc, makeErrorLine(idJson, err));
    }

    void
    submitRun(const std::shared_ptr<ClientConn> &cc,
              ServiceRequest &&req)
    {
        if (!admitting.load()) {
            respondError(cc, req.idJson,
                         ServiceErrorCode::SHUTTING_DOWN,
                         "router is draining; request rejected");
            return;
        }
        std::uint64_t fp = requestFingerprint(req);
        std::uint64_t rid;
        int wk;
        std::string line;
        {
            std::lock_guard<std::mutex> lk(mu);
            wk = pickWorker(fp);
            if (wk < 0) {
                stats.failed++;
                routerMetrics().failed.add();
                // Escape the lock before writing to the client.
            }
            if (wk >= 0) {
                rid = nextRid++;
                Pending p;
                p.kind = Pending::Kind::RUN;
                p.origId = req.idJson;
                p.fp = fp;
                p.client = cc;
                p.worker = wk;
                p.request = std::move(req);
                line = canonicalLine(p.request, rid);
                pending.emplace(rid, std::move(p));
                stats.routed++;
            }
        }
        if (wk < 0) {
            respondError(cc, req.idJson, ServiceErrorCode::OVERLOADED,
                         "no workers available; retry with backoff",
                         {{"workers", std::to_string(opts.workers)},
                          {"up", "0"}});
            return;
        }
        routerMetrics().routed.add();
        if (!forwardTo(wk, line))
            onWorkerDown(wk);  // its orphan sweep re-routes this rid
    }

    /**
     * Re-route one in-flight request after its worker died. Run
     * results are deterministic functions of the request, so a retry
     * on another worker can never change the answer the client sees.
     */
    void
    reroute(std::uint64_t rid)
    {
        for (;;) {
            std::shared_ptr<StatsAgg> finishedAgg;
            std::shared_ptr<ClientConn> failClient;
            std::string failId;
            int failShard = -1;
            int wk = -1;
            std::string line;
            {
                std::lock_guard<std::mutex> lk(mu);
                auto it = pending.find(rid);
                if (it == pending.end())
                    return;  // answered before the worker died
                Pending &p = it->second;
                if (p.kind == Pending::Kind::PING) {
                    pending.erase(it);
                    notifyIfDrained();
                    return;
                }
                if (p.kind == Pending::Kind::STATS) {
                    auto agg = p.agg;
                    pending.erase(it);
                    notifyIfDrained();
                    if (agg && --agg->outstanding == 0)
                        finishedAgg = agg;
                } else if (p.attempts >= opts.maxRouteAttempts ||
                           (wk = pickWorker(p.fp)) < 0) {
                    failClient = p.client;
                    failId = p.origId;
                    failShard = p.worker;
                    pending.erase(it);
                    stats.failed++;
                    notifyIfDrained();
                } else {
                    p.attempts++;
                    p.worker = wk;
                    stats.rerouted++;
                    line = canonicalLine(p.request, rid);
                }
            }
            if (finishedAgg) {
                finishStats(finishedAgg);
                return;
            }
            if (failClient || wk < 0) {
                routerMetrics().failed.add();
                respondError(
                    failClient, failId, ServiceErrorCode::OVERLOADED,
                    "worker died and no retry capacity remains; "
                    "retry with backoff",
                    {{"shard", std::to_string(failShard)},
                     {"reason", "\"worker_unavailable\""}});
                return;
            }
            routerMetrics().rerouted.add();
            if (forwardTo(wk, line))
                return;
            // The replacement died between pick and send: mark it and
            // loop — onWorkerDown may already have re-routed this rid,
            // in which case the next iteration finds nothing to do.
            onWorkerDown(wk);
        }
    }

    void
    notifyIfDrained()
    {
        // mu held.
        if (pending.empty())
            pendingDrained.notify_all();
    }

    // ---- responses -------------------------------------------------

    void
    onWorkerLine(int wk, const std::string &line)
    {
        // Response envelopes always lead with the id we assigned:
        // {"id":<rid>,...
        const char *prefix = "{\"id\":";
        if (line.compare(0, 6, prefix) != 0)
            return;
        char *end = nullptr;
        std::uint64_t rid = std::strtoull(line.c_str() + 6, &end, 10);
        if (!end || end == line.c_str() + 6)
            return;  // null/non-numeric id (e.g. a shutdown ack)
        std::size_t rest = static_cast<std::size_t>(end - line.c_str());

        Pending p;
        {
            std::lock_guard<std::mutex> lk(mu);
            auto it = pending.find(rid);
            if (it == pending.end())
                return;  // stale duplicate after a re-route
            p = std::move(it->second);
            pending.erase(it);
            notifyIfDrained();
        }
        switch (p.kind) {
          case Pending::Kind::PING:
            return;
          case Pending::Kind::STATS: {
            JsonParseResult parsed = parseJson(line);
            bool finished = false;
            {
                std::lock_guard<std::mutex> lk(mu);
                if (parsed.ok)
                    if (const JsonValue *s = parsed.value.find("stats"))
                        mergeStats(p.agg->merged, *s);
                finished = --p.agg->outstanding == 0;
            }
            if (finished)
                finishStats(p.agg);
            return;
          }
          case Pending::Kind::RUN: {
            // Rewrite the envelope prefix: our rid back to the
            // client's id, plus the answering shard. Everything after
            // the id — including the byte-exact result document — is
            // relayed untouched.
            std::string out = "{\"id\":" + p.origId +
                ",\"shard\":" + std::to_string(wk) + line.substr(rest);
            respond(p.client, out);
            return;
          }
        }
    }

    void
    finishStats(const std::shared_ptr<StatsAgg> &agg)
    {
        int up = 0;
        RouterStats s;
        {
            std::lock_guard<std::mutex> lk(mu);
            for (const auto &w : workers)
                if (w->state == WorkerState::UP)
                    up++;
            s = stats;
        }
        JsonWriter w;
        w.beginObject();
        w.key("id").rawValue(agg->origId.empty() ? "null"
                                                 : agg->origId);
        w.key("ok").value(true);
        w.key("op").value("stats");
        w.key("workers").value(opts.workers);
        w.key("up").value(up);
        w.key("router").beginObject();
        w.key("routed").value(s.routed);
        w.key("rerouted").value(s.rerouted);
        w.key("restarts").value(s.restarts);
        w.key("failed").value(s.failed);
        w.key("pings").value(s.pings);
        w.endObject();
        w.key("stats");
        if (agg->merged.isObject())
            writeValue(w, agg->merged);
        else
            w.rawValue("{}");
        w.endObject();
        respond(agg->client, w.str());
    }

    /** Fan an `op:"stats"` out to every live worker and aggregate. */
    void
    fanoutStats(const std::shared_ptr<ClientConn> &cc,
                const std::string &origId)
    {
        auto agg = std::make_shared<StatsAgg>();
        agg->origId = origId;
        agg->client = cc;
        std::vector<std::pair<int, std::uint64_t>> legs;
        {
            std::lock_guard<std::mutex> lk(mu);
            for (const auto &w : workers) {
                if (w->state != WorkerState::UP)
                    continue;
                std::uint64_t rid = nextRid++;
                Pending p;
                p.kind = Pending::Kind::STATS;
                p.worker = w->id;
                p.agg = agg;
                pending.emplace(rid, std::move(p));
                agg->outstanding++;
                legs.emplace_back(w->id, rid);
            }
        }
        if (legs.empty()) {
            finishStats(agg);
            return;
        }
        for (const auto &[wk, rid] : legs) {
            std::string line = "{\"id\":" + std::to_string(rid) +
                ",\"op\":\"stats\"}";
            if (!forwardTo(wk, line))
                onWorkerDown(wk);  // the orphan sweep settles this leg
        }
    }

    // ---- client side -----------------------------------------------

    void
    acceptLoop()
    {
        while (!stopAccept.load()) {
            pollfd pfd = {listenFd, POLLIN, 0};
            int r = ::poll(&pfd, 1, 200);
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (r == 0)
                continue;
            int cfd = ::accept(listenFd, nullptr, nullptr);
            if (cfd < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            auto cc = std::make_shared<ClientConn>();
            cc->fd = cfd;
            {
                std::lock_guard<std::mutex> lk(mu);
                conns.push_back(cc);
            }
            cc->reader =
                std::thread([this, cc] { clientReadLoop(cc); });
        }
    }

    void
    clientReadLoop(const std::shared_ptr<ClientConn> &cc)
    {
        std::string buf, line;
        while (readLine(cc->fd, buf, line)) {
            if (line.empty())
                continue;
            handleClientLine(cc, line);
        }
    }

    void
    handleClientLine(const std::shared_ptr<ClientConn> &cc,
                     const std::string &line)
    {
        ParsedRequest parsed = parseServiceRequest(line);
        if (!parsed.ok) {
            respond(cc, makeErrorLine(parsed.request.idJson,
                                      parsed.error));
            return;
        }
        ServiceRequest &req = parsed.request;
        switch (req.op) {
          case ServiceOp::PING:
            respond(cc, makeAckLine(req.idJson, "pong"));
            return;
          case ServiceOp::SHUTDOWN:
            respond(cc, makeAckLine(req.idJson, "shutdown"));
            requestStop();
            return;
          case ServiceOp::STATS:
            fanoutStats(cc, req.idJson);
            return;
          case ServiceOp::RUN:
            submitRun(cc, std::move(req));
            return;
        }
    }

    // ---- stop ------------------------------------------------------

    void
    requestStop()
    {
        {
            std::lock_guard<std::mutex> lk(stopMu);
            stopRequested = true;
        }
        stopCv.notify_all();
    }

    void
    waitUntilStopRequested()
    {
        std::unique_lock<std::mutex> lk(stopMu);
        stopCv.wait(lk, [this] { return stopRequested; });
    }

    /** Gracefully shut one worker down through its own drain path. */
    void
    drainWorker(Worker &w)
    {
        bool up;
        {
            std::lock_guard<std::mutex> lk(mu);
            up = w.state == WorkerState::UP;
        }
        if (up) {
            std::lock_guard<std::mutex> wl(w.writeMu);
            sendLine(w.fd, R"({"op":"shutdown"})");
        }
        if (w.pid > 0) {
            // Bounded wait for the child's graceful exit, then force.
            for (int i = 0; i < 100; i++) {
                int status = 0;
                if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
                    w.pid = -1;
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, nullptr, 0);
                w.pid = -1;
            }
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            if (w.state == WorkerState::UP) {
                w.state = WorkerState::DOWN;
                ::shutdown(w.fd, SHUT_RDWR);
            }
        }
        if (w.reader.joinable())
            w.reader.join();
        std::lock_guard<std::mutex> wl(w.writeMu);
        if (w.fd >= 0)
            ::close(w.fd);
        w.fd = -1;
        ::unlink(w.sock.c_str());
    }

    void
    teardownFleet()
    {
        for (auto &wp : workers) {
            Worker &w = *wp;
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, nullptr, 0);
                w.pid = -1;
            }
            {
                std::lock_guard<std::mutex> lk(mu);
                if (w.state == WorkerState::UP) {
                    w.state = WorkerState::DOWN;
                    ::shutdown(w.fd, SHUT_RDWR);
                }
            }
            if (w.reader.joinable())
                w.reader.join();
            if (w.fd >= 0)
                ::close(w.fd);
            w.fd = -1;
            ::unlink(w.sock.c_str());
        }
    }

    void
    shutdown()
    {
        if (drained)
            return;
        drained = true;
        stopping = true;
        admitting = false;

        // 1. Close the front door.
        stopAccept = true;
        if (acceptThread.joinable())
            acceptThread.join();

        // 2. Wait (bounded) for in-flight requests to finish; the
        //    workers keep answering while we wait.
        {
            std::unique_lock<std::mutex> lk(mu);
            pendingDrained.wait_for(
                lk, std::chrono::seconds(30),
                [this] { return pending.empty(); });
        }

        // 3. Stop restarts and health checks.
        stopSupervisor = true;
        if (supervisorThread.joinable())
            supervisorThread.join();

        // 4. Rolling drain: one worker at a time through its own
        //    graceful-shutdown path.
        for (auto &wp : workers)
            drainWorker(*wp);

        // 5. Unblock and join the client readers.
        std::vector<std::shared_ptr<ClientConn>> cs;
        {
            std::lock_guard<std::mutex> lk(mu);
            cs.assign(conns.begin(), conns.end());
        }
        for (auto &cc : cs)
            ::shutdown(cc->fd, SHUT_RDWR);
        for (auto &cc : cs) {
            if (cc->reader.joinable())
                cc->reader.join();
            ::close(cc->fd);
        }
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        ::unlink(opts.socketPath.c_str());
    }
};

// ---------------------------------------------------------------------
// Router facade
// ---------------------------------------------------------------------

Router::Router(const RouterOptions &opts)
    : impl_(std::make_unique<RouterImpl>(opts))
{
}

Router::~Router()
{
    if (impl_->started)
        impl_->shutdown();
    else
        impl_->teardownFleet();
}

bool
Router::start()
{
    return impl_->start();
}

void
Router::waitUntilStopRequested()
{
    impl_->waitUntilStopRequested();
}

void
Router::requestStop()
{
    impl_->requestStop();
}

void
Router::shutdown()
{
    impl_->shutdown();
}

int
Router::workerPid(int i) const
{
    if (i < 0 || i >= static_cast<int>(impl_->workers.size()))
        return -1;
    return static_cast<int>(impl_->workers[static_cast<std::size_t>(i)]
                                ->pid);
}

int
Router::upWorkers() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    int up = 0;
    for (const auto &w : impl_->workers)
        if (w->state == RouterImpl::WorkerState::UP)
            up++;
    return up;
}

RouterStats
Router::stats() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->stats;
}

// ---------------------------------------------------------------------
// CLI entry
// ---------------------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_routerStop = 0;

void
routerStopSignal(int)
{
    g_routerStop = 1;
}

} // namespace

int
runRouter(const RouterOptions &opts)
{
    struct sigaction sa = {};
    sa.sa_handler = routerStopSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);
    g_routerStop = 0;

    Router router(opts);
    Stopwatch wall;
    if (!router.start())
        return 1;

    // Wake the stop wait when a signal lands: poll the flag cheaply.
    std::thread signalPump([&router] {
        while (!g_routerStop) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        router.requestStop();
    });
    router.waitUntilStopRequested();
    g_routerStop = 1;  // stop the pump when a client asked to stop
    signalPump.join();
    router.shutdown();

    RouterStats s = router.stats();
    std::fprintf(stderr,
                 "rfhc router: routed %llu (rerouted %llu, failed "
                 "%llu), %llu restarts in %.1fs\n",
                 static_cast<unsigned long long>(s.routed),
                 static_cast<unsigned long long>(s.rerouted),
                 static_cast<unsigned long long>(s.failed),
                 static_cast<unsigned long long>(s.restarts),
                 wall.elapsedSec());

    ManifestInfo m;
    m.tool = "rfhc router";
    m.engine = "service";
    m.config = {
        {"socket", opts.socketPath},
        {"workers", std::to_string(opts.workers)},
        {"virtual_nodes", std::to_string(opts.virtualNodes)},
        {"cache_dir",
         opts.cacheDir.empty() ? std::string("(none)") : opts.cacheDir},
        {"worker_threads", std::to_string(opts.workerThreads)},
    };
    m.timing.wallSec = wall.elapsedSec();
    m.timing.threads = opts.workers;
    m.benchmarks = {
        {"rfhc.router/routed", static_cast<double>(s.routed),
         "requests", true},
        {"rfhc.router/rerouted", static_cast<double>(s.rerouted),
         "requests", false},
        {"rfhc.router/restarts", static_cast<double>(s.restarts),
         "restarts", false},
        {"rfhc.router/failed", static_cast<double>(s.failed),
         "requests", false},
    };
    if (!opts.manifestPath.empty()) {
        if (!writeManifest(opts.manifestPath, m)) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         opts.manifestPath.c_str());
            return 1;
        }
        std::fprintf(stderr, "rfhc: wrote manifest %s\n",
                     opts.manifestPath.c_str());
    }
    emitRunArtifacts(m);
    return 0;
}

} // namespace rfh
