#include "service/protocol.h"

#include <cmath>
#include <cstdio>

#include "core/json.h"
#include "core/scheme.h"
#include "energy/energy_params.h"

namespace rfh {

namespace {

/** Re-serialise a scalar JsonValue for echoing the request id back. */
std::string
scalarToJson(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::NUL:
        return "null";
      case JsonValue::Type::BOOL:
        return v.boolean ? "true" : "false";
      case JsonValue::Type::STRING: {
        JsonWriter w;
        w.value(v.string);
        return w.str();
      }
      case JsonValue::Type::NUMBER: {
        // Integral ids round-trip exactly; anything else keeps full
        // double precision.
        double d = v.number;
        if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%lld",
                          static_cast<long long>(d));
            return buf;
        }
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        return buf;
      }
      default:
        return "";
    }
}

ParsedRequest
fail(ServiceErrorCode code, std::string message,
     std::string idJson = "null")
{
    ParsedRequest p;
    p.ok = false;
    p.error.code = code;
    p.error.message = std::move(message);
    p.request.idJson = std::move(idJson);
    return p;
}

} // namespace

std::string_view
serviceErrorCodeName(ServiceErrorCode code)
{
    switch (code) {
      case ServiceErrorCode::PARSE_ERROR: return "parse_error";
      case ServiceErrorCode::BAD_REQUEST: return "bad_request";
      case ServiceErrorCode::BAD_KERNEL: return "bad_kernel";
      case ServiceErrorCode::UNKNOWN_WORKLOAD: return "unknown_workload";
      case ServiceErrorCode::UNKNOWN_SCHEME: return "unknown_scheme";
      case ServiceErrorCode::DEADLINE_EXCEEDED:
        return "deadline_exceeded";
      case ServiceErrorCode::OVERLOADED: return "overloaded";
      case ServiceErrorCode::SHUTTING_DOWN: return "shutting_down";
      case ServiceErrorCode::EXEC_ERROR: return "exec_error";
    }
    return "?";
}

ExperimentConfig
ServiceRequest::config() const
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.entries = entries;
    cfg.splitLRF = splitLRF;
    cfg.partialRanges = partialRanges;
    cfg.readOperands = readOperands;
    cfg.engine = engine;
    cfg.perf = perf;
    return cfg;
}

std::optional<Scheme>
schemeFromToken(const std::string &token)
{
    if (const SchemeInfo *si =
            SchemeRegistry::instance().findToken(token))
        return si->scheme;
    return std::nullopt;
}

std::string_view
schemeToken(Scheme s)
{
    if (const SchemeInfo *si = SchemeRegistry::instance().find(s))
        return si->token;
    return "?";
}

std::optional<ExecEngine>
engineFromToken(const std::string &token)
{
    if (token == "auto")
        return ExecEngine::AUTO;
    if (token == "direct")
        return ExecEngine::DIRECT;
    if (token == "replay")
        return ExecEngine::REPLAY;
    return std::nullopt;
}

ParsedRequest
parseServiceRequest(const std::string &line)
{
    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok)
        return fail(ServiceErrorCode::PARSE_ERROR, parsed.error);
    const JsonValue &root = parsed.value;
    if (!root.isObject())
        return fail(ServiceErrorCode::BAD_REQUEST,
                    "request must be a JSON object");

    ServiceRequest req;
    // Resolve the id first so every later error can echo it.
    if (const JsonValue *id = root.find("id")) {
        std::string s = scalarToJson(*id);
        if (s.empty())
            return fail(ServiceErrorCode::BAD_REQUEST,
                        "field 'id' must be a JSON scalar");
        req.idJson = s;
    }
    auto bad = [&](std::string message) {
        return fail(ServiceErrorCode::BAD_REQUEST, std::move(message),
                    req.idJson);
    };

    for (const auto &[key, value] : root.object) {
        if (key == "id") {
            continue;
        } else if (key == "op") {
            if (!value.isString())
                return bad("field 'op' must be a string");
            if (value.string == "run")
                req.op = ServiceOp::RUN;
            else if (value.string == "ping")
                req.op = ServiceOp::PING;
            else if (value.string == "shutdown")
                req.op = ServiceOp::SHUTDOWN;
            else if (value.string == "stats")
                req.op = ServiceOp::STATS;
            else
                return bad("unknown op '" + value.string +
                           "' (valid: run, ping, shutdown, stats)");
        } else if (key == "kernel") {
            if (!value.isString() || value.string.empty())
                return bad("field 'kernel' must be a non-empty string "
                           "of RPTX text");
            req.kernelText = value.string;
        } else if (key == "workload") {
            if (!value.isString() || value.string.empty())
                return bad("field 'workload' must be a non-empty "
                           "registry name");
            req.workload = value.string;
        } else if (key == "scheme") {
            if (!value.isString())
                return bad("field 'scheme' must be a string");
            std::optional<Scheme> s = schemeFromToken(value.string);
            if (!s) {
                ParsedRequest p = fail(
                    ServiceErrorCode::UNKNOWN_SCHEME,
                    "unknown scheme '" + value.string + "' (valid: " +
                        SchemeRegistry::instance().tokenList() + ")",
                    req.idJson);
                return p;
            }
            req.scheme = *s;
        } else if (key == "engine") {
            if (!value.isString())
                return bad("field 'engine' must be a string");
            std::optional<ExecEngine> e = engineFromToken(value.string);
            if (!e)
                return bad("unknown engine '" + value.string +
                           "' (valid: auto, direct, replay)");
            req.engine = *e;
        } else if (key == "entries") {
            if (!value.isNumber() ||
                value.number != std::floor(value.number) ||
                value.number < 1 || value.number > kMaxOrfEntries)
                return bad("field 'entries' must be an integer in "
                           "[1, " + std::to_string(kMaxOrfEntries) +
                           "]");
            req.entries = static_cast<int>(value.number);
        } else if (key == "warps") {
            if (!value.isNumber() ||
                value.number != std::floor(value.number) ||
                value.number < 1 || value.number > 1024)
                return bad("field 'warps' must be an integer in "
                           "[1, 1024]");
            req.warps = static_cast<int>(value.number);
        } else if (key == "split_lrf") {
            if (value.type != JsonValue::Type::BOOL)
                return bad("field 'split_lrf' must be a boolean");
            req.splitLRF = value.boolean;
        } else if (key == "partial_ranges") {
            if (value.type != JsonValue::Type::BOOL)
                return bad("field 'partial_ranges' must be a boolean");
            req.partialRanges = value.boolean;
        } else if (key == "read_operands") {
            if (value.type != JsonValue::Type::BOOL)
                return bad("field 'read_operands' must be a boolean");
            req.readOperands = value.boolean;
        } else if (key == "perf") {
            if (value.type != JsonValue::Type::BOOL)
                return bad("field 'perf' must be a boolean");
            req.perf = value.boolean;
        } else if (key == "deadline_ms") {
            if (!value.isNumber())
                return bad("field 'deadline_ms' must be a number");
            req.deadlineMs = value.number;
        } else {
            return bad("unknown field '" + key + "'");
        }
    }

    if (req.op == ServiceOp::RUN) {
        if (req.kernelText.empty() && req.workload.empty())
            return bad("a run request needs exactly one of 'kernel' "
                       "or 'workload' (got neither)");
        if (!req.kernelText.empty() && !req.workload.empty())
            return bad("a run request needs exactly one of 'kernel' "
                       "or 'workload' (got both)");
    }

    ParsedRequest p;
    p.ok = true;
    p.request = std::move(req);
    return p;
}

std::string
serviceRequestToJson(const ServiceRequest &req)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").rawValue(req.idJson.empty() ? "null" : req.idJson);
    switch (req.op) {
      case ServiceOp::RUN: w.key("op").value("run"); break;
      case ServiceOp::PING: w.key("op").value("ping"); break;
      case ServiceOp::SHUTDOWN: w.key("op").value("shutdown"); break;
      case ServiceOp::STATS: w.key("op").value("stats"); break;
    }
    if (!req.kernelText.empty())
        w.key("kernel").value(req.kernelText);
    if (!req.workload.empty())
        w.key("workload").value(req.workload);
    w.key("scheme").value(std::string(schemeToken(req.scheme)));
    switch (req.engine) {
      case ExecEngine::AUTO: w.key("engine").value("auto"); break;
      case ExecEngine::DIRECT: w.key("engine").value("direct"); break;
      case ExecEngine::REPLAY: w.key("engine").value("replay"); break;
    }
    w.key("entries").value(req.entries);
    w.key("warps").value(req.warps);
    w.key("split_lrf").value(req.splitLRF);
    w.key("partial_ranges").value(req.partialRanges);
    w.key("read_operands").value(req.readOperands);
    // Conditional like deadline_ms: legacy lines keep their bytes.
    if (req.perf)
        w.key("perf").value(true);
    if (req.deadlineMs)
        w.key("deadline_ms").value(*req.deadlineMs);
    w.endObject();
    return w.str();
}

std::string
makeResultLine(const std::string &idJson, const std::string &resultJson)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").rawValue(idJson);
    w.key("ok").value(true);
    w.key("result").rawValue(resultJson);
    w.endObject();
    return w.str();
}

std::string
makeErrorLine(const std::string &idJson, const ServiceError &err)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").rawValue(idJson.empty() ? "null" : idJson);
    w.key("ok").value(false);
    w.key("error").beginObject();
    w.key("code").value(std::string(serviceErrorCodeName(err.code)));
    w.key("message").value(err.message);
    for (const auto &[key, raw] : err.context)
        w.key(key).rawValue(raw);
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
makeAckLine(const std::string &idJson, const std::string &op)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").rawValue(idJson.empty() ? "null" : idJson);
    w.key("ok").value(true);
    w.key("op").value(op);
    w.endObject();
    return w.str();
}

} // namespace rfh
