/**
 * @file
 * Shared Unix-socket client plumbing for the service tools.
 *
 * The load generator and the corpus fleet client speak the same
 * NDJSON-over-AF_UNIX transport; the line-level helpers live here so
 * both use identical framing, connect retry, and partial-send
 * handling.
 */

#ifndef RFH_SERVICE_NET_H
#define RFH_SERVICE_NET_H

#include <string>

namespace rfh {

/**
 * Connect to the Unix socket at @p path, retrying for a few seconds
 * (tooling starts servers in the background and the socket may not
 * exist yet). @return the connected fd, or -1.
 */
int netConnect(const std::string &path);

/** Send @p line plus the newline terminator, handling partial sends. */
bool netSendLine(int fd, const std::string &line);

/**
 * Read one newline-terminated line into @p line (terminator
 * stripped), buffering extra bytes in @p buf across calls. @return
 * false on EOF or transport error.
 */
bool netReadLine(int fd, std::string &buf, std::string &line);

/** Close @p fd (no-op for negative fds). */
void netClose(int fd);

} // namespace rfh

#endif // RFH_SERVICE_NET_H
