/**
 * @file
 * Load generator for the batch service (`rfhc loadgen`).
 *
 * Drives a running `rfhc serve --socket <path>` instance with N
 * concurrent client connections issuing a deterministic request
 * stream, retrying `overloaded` rejections with exponential backoff,
 * and reports throughput plus p50/p99 request latency. Latencies are
 * accumulated in log-spaced histograms (one per client, merged
 * bucket-wise after the join), so the reported percentiles are true
 * percentiles over every request rather than an artifact of how the
 * stream was split across clients. With `--verify` every successful
 * response's result document is compared byte-for-byte against a
 * locally computed runScheme() of the same configuration — the
 * end-to-end check that the service path changes nothing about the
 * numbers.
 *
 * Against an `rfhc router` fleet (`--router`), responses carry a
 * `"shard":<n>` field; loadgen additionally reports per-shard request
 * counts, throughput, and p50/p99, and queries the fleet's `stats` op
 * after the run to report the persistent disk-cache hit ratio.
 */

#ifndef RFH_SERVICE_LOADGEN_H
#define RFH_SERVICE_LOADGEN_H

#include <string>

namespace rfh {

/** `rfhc loadgen` configuration. */
struct LoadgenOptions
{
    /** Socket the server listens on. */
    std::string socketPath = "rfhc.sock";
    /** Concurrent client connections. */
    int clients = 4;
    /** Total run requests across all clients. */
    int requests = 100;
    /** Pin every request to one registry workload ("" = built-in mix). */
    std::string workload;
    /** Pin every request to one scheme token ("" = built-in mix). */
    std::string scheme;
    /** Pin ORF entries (0 = built-in mix). */
    int entries = 0;
    /** Warps per request. */
    int warps = 8;
    /** Per-request deadline in ms (<= 0 = none). */
    double deadlineMs = 0.0;
    /** Max resubmissions of an `overloaded` request before giving up. */
    int maxRetries = 8;
    /** Compare every result byte-for-byte against local runScheme(). */
    bool verify = false;
    /**
     * Target is an `rfhc router` fleet: read the `"shard"` field of
     * each response, print the per-shard breakdown, and query the
     * aggregated `stats` op for the disk-cache hit ratio afterwards.
     */
    bool router = false;
    /** Send `{"op":"shutdown"}` once all clients finish. */
    bool shutdownAfter = false;
    /** Manifest output path ("" = only $RFH_MANIFEST). */
    std::string manifestPath;
};

/**
 * Run the load generation session. @return the process exit code:
 * 0 when every request was answered and (under --verify) every result
 * matched; non-zero on mismatches, protocol errors, or unexpected
 * failures (deadline_exceeded counts as expected when a deadline was
 * requested).
 */
int runLoadgen(const LoadgenOptions &opts);

} // namespace rfh

#endif // RFH_SERVICE_LOADGEN_H
