/**
 * @file
 * Sharded service fleet front-end (`rfhc router`).
 *
 * One `rfhc serve` process on one socket is the served-throughput
 * ceiling; the router scales out by accepting the existing NDJSON
 * protocol on a single front socket and sharding run requests across
 * N `rfhc serve` worker processes it spawns and supervises. Placement
 * is consistent hashing over the kernel fingerprint (core/memo.h) —
 * the same key the memo and disk caches use — so each worker's warm
 * memo/trace/decode caches see an affine request stream, and adding
 * or losing a worker remaps only the neighbouring ring segment
 * instead of reshuffling every kernel.
 *
 * Supervision model:
 *  - **spawn** — workers are `<exe> serve --socket <dir>/worker-<i>.sock`
 *    children sharing one persistent disk cache directory, so a cold
 *    worker starts warm from the fleet's prior compilations.
 *  - **health** — a periodic `ping` request per worker; a broken pipe
 *    or reader EOF marks the worker down immediately.
 *  - **failover** — requests in flight on a dead worker are re-routed
 *    to ring successors (results are deterministic, so a retry can
 *    never change an answer); requests that exhaust their attempts get
 *    a structured `overloaded` error naming the dead shard.
 *  - **restart** — crashed workers are reaped and respawned with
 *    capped exponential backoff, up to a restart budget.
 *  - **rolling drain** — shutdown stops admission (`shutting_down`
 *    errors), waits for in-flight requests, then shuts workers down
 *    one at a time through their own graceful-drain path.
 *
 * Responses are relayed verbatim except for the envelope prefix: the
 * router rewrites its internal correlation id back to the client's id
 * and inserts a `"shard":<n>` field, so `loadgen --verify`'s
 * byte-compare of the result document still holds end-to-end.
 */

#ifndef RFH_SERVICE_ROUTER_H
#define RFH_SERVICE_ROUTER_H

#include <cstdint>
#include <memory>
#include <string>

namespace rfh {

/** `rfhc router` configuration. */
struct RouterOptions
{
    /** Front socket clients connect to. */
    std::string socketPath = "rfhc-router.sock";
    /** Fleet size. */
    int workers = 4;
    /**
     * Worker executable; empty resolves to /proc/self/exe (the rfhc
     * binary itself). Tests point this at the built rfhc explicitly.
     */
    std::string workerExe;
    /** Directory for worker sockets ("" = alongside socketPath). */
    std::string socketDir;
    /** Shared persistent compile cache directory ("" = none). */
    std::string cacheDir;
    /** Disk-cache size cap, forwarded to workers (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 256ull << 20;
    /** RFH_THREADS for each worker (0 = inherit the environment). */
    int workerThreads = 0;
    /** Per-worker admission queue capacity (rfhc serve --queue). */
    int queueCapacity = 64;
    /** Per-worker batch cap (rfhc serve --batch). */
    int batchMax = 8;
    /** Virtual ring nodes per worker. */
    int virtualNodes = 64;
    /** Restart budget per worker before it stays down. */
    int maxRestarts = 8;
    /** First restart backoff; doubles per consecutive restart. */
    double restartBackoffMs = 50.0;
    /** Backoff cap. */
    double restartBackoffMaxMs = 2000.0;
    /** Route attempts per request before a structured give-up. */
    int maxRouteAttempts = 3;
    /** Health-check ping interval. */
    double pingIntervalMs = 500.0;
    /** Session manifest output path ("" = only $RFH_MANIFEST). */
    std::string manifestPath;
};

/** Monotonic router accounting (mirrored into service.cache.*). */
struct RouterStats
{
    std::uint64_t routed = 0;     ///< Run requests forwarded.
    std::uint64_t rerouted = 0;   ///< Re-forwarded after a worker died.
    std::uint64_t restarts = 0;   ///< Worker respawns.
    std::uint64_t failed = 0;     ///< Answered with a router error.
    std::uint64_t pings = 0;      ///< Health probes sent.
};

struct RouterImpl;

/**
 * The embeddable fleet front-end (see file comment). runRouter() wraps
 * it for the CLI; tests construct it directly so they can kill worker
 * processes mid-load and drive the drain themselves.
 */
class Router
{
  public:
    explicit Router(const RouterOptions &opts);
    /** shutdown()s if still running. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Spawn the fleet, connect and health-check every worker, start
     * the front listener. @return false (with the fleet torn down)
     * when any worker fails to come up or the socket cannot listen.
     */
    bool start();

    /**
     * Block until a client sends `{"op":"shutdown"}` or requestStop()
     * is called (e.g. from a signal handler loop).
     */
    void waitUntilStopRequested();

    /** Make waitUntilStopRequested() return. */
    void requestStop();

    /**
     * Rolling drain: stop admission, wait for in-flight requests,
     * then shut each worker down in turn through its graceful-drain
     * path. Idempotent.
     */
    void shutdown();

    /** Worker process id of shard @p i (-1 when down). Tests kill it. */
    int workerPid(int i) const;

    /** Workers currently serving. */
    int upWorkers() const;

    RouterStats stats() const;

  private:
    std::unique_ptr<RouterImpl> impl_;
};

/**
 * Run the router until a `{"op":"shutdown"}` request or
 * SIGINT/SIGTERM, then drain the fleet. @return process exit code.
 */
int runRouter(const RouterOptions &opts);

} // namespace rfh

#endif // RFH_SERVICE_ROUTER_H
