#include "service/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rfh {

int
netConnect(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return -1;
    // Retry briefly: check.sh starts the server in the background and
    // the socket may not exist yet on the first attempt.
    for (int attempt = 0; attempt < 50; attempt++) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return -1;
}

bool
netSendLine(int fd, const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
netReadLine(int fd, std::string &buf, std::string &line)
{
    for (;;) {
        std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf, 0, nl);
            buf.erase(0, nl + 1);
            return true;
        }
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
}

void
netClose(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace rfh
