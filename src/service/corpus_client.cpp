#include "service/corpus_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/parallel.h"
#include "ir/printer.h"
#include "service/net.h"
#include "service/protocol.h"

namespace rfh {

namespace {

/** Outcome slot of one in-flight corpus request. */
struct SlotResult
{
    bool ok = false;
    bool transportFailed = false;
    CorpusSample sample;
    std::string error;
};

/**
 * Issue requests @p first, @p first + @p stride, ... of @p lines
 * synchronously over one connection, parking each response in its
 * slot. Overloaded responses back off and retry; other errors land in
 * the slot as run errors.
 */
void
clientLoop(const CorpusClientOptions &opts,
           const std::vector<std::string> &lines, int first, int stride,
           std::vector<SlotResult> &slots)
{
    int fd = netConnect(opts.socketPath);
    if (fd < 0) {
        for (std::size_t i = static_cast<std::size_t>(first);
             i < lines.size(); i += static_cast<std::size_t>(stride))
            slots[i].transportFailed = true;
        return;
    }
    std::string buf, response;
    for (std::size_t i = static_cast<std::size_t>(first);
         i < lines.size(); i += static_cast<std::size_t>(stride)) {
        SlotResult &slot = slots[i];
        for (int attempt = 0; attempt <= opts.maxRetries; attempt++) {
            if (!netSendLine(fd, lines[i]) ||
                !netReadLine(fd, buf, response)) {
                slot.transportFailed = true;
                netClose(fd);
                return;
            }
            JsonParseResult parsed = parseJson(response);
            if (!parsed.ok) {
                slot.error = "unparseable response: " + parsed.error;
                break;
            }
            if (parsed.value.boolOr("ok", false)) {
                const JsonValue *result = parsed.value.find("result");
                std::string err;
                if (result &&
                    corpusSampleFromResultJson(*result, slot.sample,
                                               &err)) {
                    slot.ok = true;
                } else {
                    slot.error = result ? err : "response missing result";
                }
                break;
            }
            const JsonValue *err = parsed.value.find("error");
            std::string code = err ? err->stringOr("code", "") : "";
            if (code == "overloaded" && attempt < opts.maxRetries) {
                // Exponential backoff: 5, 10, 20, ... ms (capped).
                int sleepMs = std::min(5 << std::min(attempt, 7), 500);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleepMs));
                continue;
            }
            slot.error =
                err ? err->stringOr("message", "service error") : "";
            if (slot.error.empty())
                slot.error = "service error";
            break;
        }
        if (!slot.ok && slot.error.empty())
            slot.error = "shed after " +
                std::to_string(opts.maxRetries) + " overloaded retries";
    }
    netClose(fd);
}

} // namespace

bool
runCorpusRemote(const CorpusConfig &cfg, const CorpusClientOptions &opts,
                CorpusResult &out, std::string *err)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    if (opts.connections < 1)
        return fail("corpus: --connections must be >= 1");
    std::vector<ScenarioProfile> profiles;
    std::vector<CorpusCell> cells;
    if (!resolveCorpusConfig(cfg, profiles, cells, err))
        return false;
    CorpusConfig resolved = cfg;
    resolved.cells = cells;
    resolved.profiles.clear();
    for (const ScenarioProfile &p : profiles)
        resolved.profiles.push_back(p.name);

    const SchemeRegistry &reg = SchemeRegistry::instance();
    auto start = std::chrono::steady_clock::now();
    CorpusAccumulator acc(resolved, profiles);
    int nCells = static_cast<int>(cells.size());
    for (std::size_t pi = 0; pi < profiles.size(); pi++) {
        const ScenarioProfile &p = profiles[pi];
        int warps = cfg.warps > 0 ? cfg.warps : p.warps;
        for (int c0 = 0; c0 < cfg.kernelsPerProfile; c0 += cfg.chunk) {
            int count =
                std::min(cfg.chunk, cfg.kernelsPerProfile - c0);
            // Generate the chunk locally and serialise one canonical
            // request line per (kernel, cell) pair.
            std::vector<std::string> names(
                static_cast<std::size_t>(count));
            std::vector<std::string> lines(
                static_cast<std::size_t>(count) *
                static_cast<std::size_t>(nCells));
            globalPool().parallelFor(count, [&](int k) {
                Workload w = corpusWorkload(p, cfg.seed, c0 + k);
                names[static_cast<std::size_t>(k)] = w.name;
                std::string text = printKernel(w.kernel);
                for (int ci = 0; ci < nCells; ci++) {
                    const SchemeInfo *info = reg.find(cells[ci].scheme);
                    ServiceRequest req;
                    req.idJson = std::to_string(k * nCells + ci);
                    req.kernelText = text;
                    req.scheme = cells[ci].scheme;
                    req.entries = cells[ci].entries;
                    req.warps = warps;
                    // The local runner's perf flag is ignored by
                    // non-pipelined schemes; the service rejects it
                    // instead, so gate per cell for identical runs.
                    req.perf = cfg.perf && info && info->caps.pipelined;
                    lines[static_cast<std::size_t>(k * nCells + ci)] =
                        serviceRequestToJson(req);
                }
            });
            std::vector<SlotResult> slots(lines.size());
            int conns = std::min(
                opts.connections, static_cast<int>(lines.size()));
            {
                std::vector<std::thread> threads;
                threads.reserve(static_cast<std::size_t>(conns));
                for (int c = 0; c < conns; c++)
                    threads.emplace_back([&, c] {
                        clientLoop(opts, lines, c, conns, slots);
                    });
                for (std::thread &t : threads)
                    t.join();
            }
            for (const SlotResult &slot : slots)
                if (slot.transportFailed)
                    return fail("corpus: transport failure (is the "
                                "server running on " +
                                opts.socketPath + "?)");
            // Fold in the same canonical (kernel, cell) order as the
            // local runner.
            for (int k = 0; k < count; k++) {
                const SlotResult &first =
                    slots[static_cast<std::size_t>(k * nCells)];
                acc.foldKernel(static_cast<int>(pi),
                               first.ok ? first.sample.instructions
                                        : 0.0);
                for (int ci = 0; ci < nCells; ci++) {
                    const SlotResult &slot = slots[
                        static_cast<std::size_t>(k * nCells + ci)];
                    if (slot.ok)
                        acc.fold(static_cast<int>(pi), ci, slot.sample);
                    else
                        acc.foldError(
                            static_cast<int>(pi), ci,
                            names[static_cast<std::size_t>(k)] + ": " +
                                slot.error);
                }
            }
        }
    }
    out = acc.take();
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return true;
}

} // namespace rfh
