#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <list>
#include <memory>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/diskcache.h"
#include "core/json.h"
#include "core/manifest.h"
#include "core/memo.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/timing.h"
#include "core/trace_events.h"
#include "ir/parser.h"
#include "workloads/registry.h"

namespace rfh {

namespace {

/** Sharded hot-path metrics, registered once. */
struct ServiceMetrics
{
    Counter &requests = globalMetrics().counter("service.requests");
    Counter &ok = globalMetrics().counter("service.ok");
    Counter &errors = globalMetrics().counter("service.errors");
    Counter &shed = globalMetrics().counter("service.shed");
    Counter &timeouts = globalMetrics().counter("service.timeouts");
    Counter &evictions =
        globalMetrics().counter("service.cacheEvictions");
    Timer &handle = globalMetrics().timer("service.handleSec");
    Histogram &queueDepth =
        globalMetrics().histogram("service.queueDepth");
    Histogram &batchSize =
        globalMetrics().histogram("service.batch_size");
};

ServiceMetrics &
serviceMetrics()
{
    static ServiceMetrics m;
    return m;
}

} // namespace

BatchService::BatchService(const ServiceOptions &opts) : opts_(opts)
{
    pool_ = opts_.pool ? opts_.pool : &globalPool();
    workers_ = opts_.workers > 0 ? opts_.workers : pool_->threadCount();
    if (opts_.queueCapacity < 1)
        opts_.queueCapacity = 1;
    if (opts_.batchMax < 1)
        opts_.batchMax = 1;
}

BatchService::~BatchService()
{
    drain();
}

std::uint64_t
BatchService::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
BatchService::start()
{
    if (started_)
        return;
    started_ = true;
    // The workers are the pool's own threads: one long-lived
    // parallelFor whose every index runs the drain loop until the
    // queue closes. With a one-thread pool this degenerates to the
    // dispatcher thread serving every request itself.
    dispatcher_ = std::thread([this] {
        pool_->parallelFor(workers_, [this](int) { workerLoop(); });
    });
}

bool
BatchService::submit(const std::string &line, Responder respond)
{
    ServiceMetrics &m = serviceMetrics();
    m.requests.add();

    ParsedRequest parsed = parseServiceRequest(line);
    if (!parsed.ok) {
        m.errors.add();
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            stats_.errors++;
        }
        respond(makeErrorLine(parsed.request.idJson, parsed.error));
        return true;
    }
    ServiceRequest &req = parsed.request;

    if (req.op == ServiceOp::PING) {
        respond(makeAckLine(req.idJson, "pong"));
        return true;
    }
    if (req.op == ServiceOp::STATS) {
        respond(makeStatsLine(req.idJson));
        return true;
    }
    if (req.op == ServiceOp::SHUTDOWN) {
        respond(makeAckLine(req.idJson, "shutdown"));
        return false;
    }

    Job job;
    job.respond = std::move(respond);
    if (req.deadlineMs)
        job.deadlineNs = nowNs() +
            static_cast<std::uint64_t>(
                std::max(0.0, *req.deadlineMs) * 1e6);
    job.request = std::move(req);

    {
        std::unique_lock<std::mutex> lk(mu_);
        if (closed_) {
            lk.unlock();
            ServiceError err;
            err.code = ServiceErrorCode::SHUTTING_DOWN;
            err.message = "service is draining; request rejected";
            m.errors.add();
            {
                std::lock_guard<std::mutex> slk(statsMu_);
                stats_.errors++;
            }
            job.respond(makeErrorLine(job.request.idJson, err));
            return true;
        }
        if (static_cast<int>(queue_.size()) >= opts_.queueCapacity) {
            lk.unlock();
            // Load shedding: answer immediately instead of stalling
            // the client behind a full queue.
            ServiceError err;
            err.code = ServiceErrorCode::OVERLOADED;
            err.message =
                "admission queue full; retry with backoff";
            err.context.emplace_back(
                "queue_capacity", std::to_string(opts_.queueCapacity));
            m.shed.add();
            m.errors.add();
            {
                std::lock_guard<std::mutex> slk(statsMu_);
                stats_.shed++;
                stats_.errors++;
            }
            job.respond(makeErrorLine(job.request.idJson, err));
            return true;
        }
        queue_.push_back(std::move(job));
        m.queueDepth.observe(queue_.size());
        {
            std::lock_guard<std::mutex> slk(statsMu_);
            stats_.accepted++;
        }
    }
    queueReady_.notify_one();
    return true;
}

void
BatchService::workerLoop()
{
    ServiceMetrics &m = serviceMetrics();
    std::vector<Job> batch;
    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lk(mu_);
            queueReady_.wait(
                lk, [&] { return closed_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // closed_ and drained
            // Drain the requests already waiting, up to the batch
            // cap: under load the whole slice shares one
            // replayBatch() pre-warm; a slice of one keeps the
            // historical single-run path.
            int take = std::min(opts_.batchMax,
                                static_cast<int>(queue_.size()));
            for (int i = 0; i < take; i++) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        m.batchSize.observe(static_cast<double>(batch.size()));
        handleBatch(batch);
        maybeEvictCaches();
    }
}

void
BatchService::handleBatch(std::vector<Job> &batch)
{
    ServiceMetrics &m = serviceMetrics();
    const std::size_t n = batch.size();

    // Per-job responses, filled in three waves: pre-dispatch failures
    // (expired deadline, bad kernel source) inline, then every
    // runnable request through one replayBatch, then the envelopes.
    std::vector<std::string> responses(n);
    // Stable storage: BatchItem keeps a pointer to its workload.
    std::vector<Workload> workloads(n);
    std::vector<BatchItem> items;
    std::vector<std::size_t> itemJob;
    items.reserve(n);
    itemJob.reserve(n);

    // A request must never take its worker down with it: any failure
    // becomes a structured response and the worker moves on.
    for (std::size_t j = 0; j < n; j++) {
        Job &job = batch[j];
        try {
            if (job.deadlineNs && nowNs() > job.deadlineNs) {
                ServiceError err;
                err.code = ServiceErrorCode::DEADLINE_EXCEEDED;
                err.message = "deadline expired while queued";
                responses[j] = makeErrorLine(job.request.idJson, err);
                continue;
            }
            if (opts_.onBeforeHandle)
                opts_.onBeforeHandle();
            if (n == 1) {
                // Lone request: the historical path (AUTO engine
                // resolves to the direct oracle).
                TraceSpan span("service.request", "service");
                ScopedTimer timer(m.handle);
                std::shared_lock<std::shared_mutex> cl(cacheMu_);
                responses[j] =
                    executeRun(job.request, job.deadlineNs);
                continue;
            }
            std::string errLine;
            if (!prepareRun(job.request, workloads[j], errLine)) {
                responses[j] = errLine;
                continue;
            }
            BatchItem item;
            item.workload = &workloads[j];
            item.cfg = job.request.config();
            if (job.deadlineNs) {
                const std::uint64_t deadlineNs = job.deadlineNs;
                item.cfg.cancel = [deadlineNs] {
                    return nowNs() > deadlineNs;
                };
            }
            itemJob.push_back(j);
            items.push_back(std::move(item));
        } catch (const std::exception &e) {
            ServiceError err;
            err.code = ServiceErrorCode::EXEC_ERROR;
            err.message = std::string("internal error: ") + e.what();
            responses[j] = makeErrorLine(job.request.idJson, err);
        }
    }

    if (!items.empty()) {
        try {
            TraceSpan span("service.batch", "service");
            ScopedTimer timer(m.handle);
            std::shared_lock<std::shared_mutex> cl(cacheMu_);
            std::vector<RunOutcome> outcomes =
                replayBatch(items, pool_);
            for (std::size_t i = 0; i < items.size(); i++)
                responses[itemJob[i]] = finishRun(
                    batch[itemJob[i]].request, outcomes[i]);
        } catch (const std::exception &e) {
            ServiceError err;
            err.code = ServiceErrorCode::EXEC_ERROR;
            err.message = std::string("internal error: ") + e.what();
            for (std::size_t i = 0; i < items.size(); i++)
                responses[itemJob[i]] = makeErrorLine(
                    batch[itemJob[i]].request.idJson, err);
        }
    }

    for (std::size_t j = 0; j < n; j++) {
        const std::string &response = responses[j];
        bool isOk =
            response.find("\"ok\":true") != std::string::npos;
        bool isTimeout = !isOk &&
            response.find("\"deadline_exceeded\"") !=
                std::string::npos;
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            stats_.completed++;
            if (isOk)
                stats_.ok++;
            else
                stats_.errors++;
            if (isTimeout)
                stats_.timeouts++;
        }
        if (isOk)
            m.ok.add();
        else
            m.errors.add();
        if (isTimeout)
            m.timeouts.add();
        batch[j].respond(response);
    }
}

bool
BatchService::prepareRun(const ServiceRequest &req, Workload &w,
                         std::string &errorLine)
{
    auto error = [&](ServiceErrorCode code, std::string message) {
        ServiceError err;
        err.code = code;
        err.message = std::move(message);
        errorLine = makeErrorLine(req.idJson, err);
        return false;
    };

    if (!req.workload.empty()) {
        const Workload *reg = findWorkload(req.workload);
        if (!reg)
            return error(ServiceErrorCode::UNKNOWN_WORKLOAD,
                         "unknown workload '" + req.workload +
                             "' (not in the Table 1 registry)");
        w = *reg;
    } else {
        ParseResult parsed = parseKernel(req.kernelText);
        if (!parsed.ok)
            return error(ServiceErrorCode::BAD_KERNEL, parsed.error);
        w.name = parsed.kernel.name;
        w.suite = "service";
        w.kernel = std::move(parsed.kernel);
    }
    w.run.numWarps = req.warps;
    return true;
}

std::string
BatchService::finishRun(const ServiceRequest &req, const RunOutcome &o)
{
    auto error = [&](ServiceErrorCode code, std::string message) {
        ServiceError err;
        err.code = code;
        err.message = std::move(message);
        return makeErrorLine(req.idJson, err);
    };
    if (o.error == "cancelled")
        return error(ServiceErrorCode::DEADLINE_EXCEEDED,
                     "deadline expired during the run");
    if (!o.ok())
        return error(ServiceErrorCode::EXEC_ERROR, o.error);
    return makeResultLine(req.idJson, outcomeToJson(o));
}

std::string
BatchService::executeRun(const ServiceRequest &req,
                         std::uint64_t deadlineNs)
{
    Workload w;
    std::string errorLine;
    if (!prepareRun(req, w, errorLine))
        return errorLine;

    ExperimentConfig cfg = req.config();
    if (deadlineNs)
        cfg.cancel = [deadlineNs] { return nowNs() > deadlineNs; };

    return finishRun(req, runScheme(w, cfg));
}

void
BatchService::maybeEvictCaches()
{
    ExperimentCache &cache = globalExperimentCache();
    if (cache.entryCount() <= opts_.cacheMaxEntries)
        return;
    // Quiesce: handling workers hold cacheMu_ shared, so the
    // exclusive lock means no lookup is in flight and clear() is
    // safe despite its reference-returning API.
    std::unique_lock<std::shared_mutex> lk(cacheMu_);
    if (cache.entryCount() > opts_.cacheMaxEntries) {
        cache.clear();
        serviceMetrics().evictions.add();
    }
}

std::string
BatchService::makeStatsLine(const std::string &idJson) const
{
    ServiceStats s = stats();
    ExperimentCache &cache = globalExperimentCache();
    ExperimentCache::Stats mc = cache.stats();
    JsonWriter w;
    w.beginObject();
    w.key("id").rawValue(idJson.empty() ? "null" : idJson);
    w.key("ok").value(true);
    w.key("op").value("stats");
    w.key("stats").beginObject();
    w.key("service").beginObject();
    w.key("accepted").value(s.accepted);
    w.key("completed").value(s.completed);
    w.key("ok").value(s.ok);
    w.key("errors").value(s.errors);
    w.key("shed").value(s.shed);
    w.key("timeouts").value(s.timeouts);
    w.endObject();
    w.key("memo").beginObject();
    w.key("baseline_hits").value(mc.baselineHits);
    w.key("baseline_misses").value(mc.baselineMisses);
    w.key("analysis_hits").value(mc.analysisHits);
    w.key("analysis_misses").value(mc.analysisMisses);
    w.key("trace_hits").value(mc.traceHits);
    w.key("trace_misses").value(mc.traceMisses);
    w.key("entries").value(
        static_cast<std::uint64_t>(cache.entryCount()));
    w.endObject();
    w.key("disk").beginObject();
    DiskCache *dc = cache.diskCache();
    w.key("attached").value(dc != nullptr);
    DiskCacheStats d = dc ? dc->stats() : DiskCacheStats{};
    w.key("hits").value(d.hits);
    w.key("misses").value(d.misses);
    w.key("writes").value(d.writes);
    w.key("evictions").value(d.evictions);
    w.key("invalidated").value(d.invalidated);
    w.key("bytes_read").value(d.bytesRead);
    w.key("bytes_written").value(d.bytesWritten);
    w.key("bytes_stored").value(d.bytesStored);
    w.endObject();
    w.endObject();
    w.endObject();
    return w.str();
}

void
BatchService::drain()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
    }
    queueReady_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

ServiceStats
BatchService::stats() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return stats_;
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_stopRequested = 0;

void
handleStopSignal(int)
{
    g_stopRequested = 1;
}

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = handleStopSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);
}

/** Write all of @p line plus a newline; false on a broken peer. */
bool
sendLine(int fd, const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Pull one newline-terminated line out of @p buf, recv()ing as needed. */
bool
readLine(int fd, std::string &buf, std::string &line)
{
    for (;;) {
        std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf, 0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
    }
}

int
serveStdio(BatchService &svc)
{
    std::mutex outMu;
    auto respond = [&outMu](const std::string &line) {
        std::lock_guard<std::mutex> lk(outMu);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    };
    std::string line;
    while (!g_stopRequested && std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        if (!svc.submit(line, respond))
            break;
    }
    svc.drain();
    return 0;
}

/** One accepted connection: its fd, reader thread, and write lock. */
struct Connection
{
    int fd = -1;
    std::mutex writeMu;
    std::thread reader;
};

int
serveSocket(BatchService &svc, const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        std::fprintf(stderr, "rfhc serve: socket path too long: %s\n",
                     path.c_str());
        return 1;
    }
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0) {
        std::perror("rfhc serve: socket");
        return 1;
    }
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(lfd, 64) < 0) {
        std::fprintf(stderr, "rfhc serve: cannot listen on %s: %s\n",
                     path.c_str(), std::strerror(errno));
        ::close(lfd);
        return 1;
    }
    std::fprintf(stderr, "rfhc serve: listening on %s\n", path.c_str());

    std::mutex connsMu;
    std::list<Connection> conns;

    while (!g_stopRequested) {
        pollfd pfd = {lfd, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            continue;
        int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        Connection *conn;
        {
            std::lock_guard<std::mutex> lk(connsMu);
            conns.emplace_back();
            conn = &conns.back();
        }
        conn->fd = cfd;
        conn->reader = std::thread([&svc, conn] {
            std::string buf, line;
            auto respond = [conn](const std::string &resp) {
                std::lock_guard<std::mutex> lk(conn->writeMu);
                sendLine(conn->fd, resp);
            };
            while (readLine(conn->fd, buf, line)) {
                if (line.empty())
                    continue;
                if (!svc.submit(line, respond)) {
                    g_stopRequested = 1;
                    break;
                }
            }
        });
    }

    // Stop admission at the door, finish everything already admitted
    // (responses still flow to the open connections), then unblock
    // and join the readers.
    ::close(lfd);
    svc.drain();
    {
        std::lock_guard<std::mutex> lk(connsMu);
        for (Connection &c : conns)
            ::shutdown(c.fd, SHUT_RDWR);
    }
    for (Connection &c : conns) {
        if (c.reader.joinable())
            c.reader.join();
        ::close(c.fd);
    }
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
runServe(const ServeOptions &opts)
{
    installSignalHandlers();
    g_stopRequested = 0;
    if (!opts.traceEventsPath.empty())
        TraceEventLog::global().enable();

    // Attach the persistent compile cache before serving: memo misses
    // then hydrate from disk (a restarted worker skips recompilation)
    // and write computed entries back for the rest of the fleet.
    std::unique_ptr<DiskCache> diskCache;
    if (!opts.cacheDir.empty()) {
        DiskCacheOptions dco;
        dco.dir = opts.cacheDir;
        dco.maxBytes = opts.cacheMaxBytes;
        diskCache = std::make_unique<DiskCache>(dco);
        if (!diskCache->usable())
            std::fprintf(stderr,
                         "rfhc serve: cache dir %s unusable; running "
                         "without a disk cache\n",
                         opts.cacheDir.c_str());
        else
            globalExperimentCache().attachDiskCache(diskCache.get());
    }

    BatchService svc(opts.service);
    svc.start();
    Stopwatch wall;

    int rc = opts.socketPath.empty()
                 ? serveStdio(svc)
                 : serveSocket(svc, opts.socketPath);
    svc.drain();

    ServiceStats s = svc.stats();
    std::fprintf(stderr,
                 "rfhc serve: %llu completed (ok %llu, errors %llu, "
                 "shed %llu, timeouts %llu) in %.1fs\n",
                 static_cast<unsigned long long>(s.completed),
                 static_cast<unsigned long long>(s.ok),
                 static_cast<unsigned long long>(s.errors),
                 static_cast<unsigned long long>(s.shed),
                 static_cast<unsigned long long>(s.timeouts),
                 wall.elapsedSec());

    ManifestInfo m;
    m.tool = "rfhc serve";
    m.engine = "service";
    m.config = {
        {"transport", opts.socketPath.empty()
                          ? std::string("stdio")
                          : "unix:" + opts.socketPath},
        {"workers", std::to_string(
                        opts.service.workers > 0
                            ? opts.service.workers
                            : globalPool().threadCount())},
        {"queue_capacity",
         std::to_string(opts.service.queueCapacity)},
        {"batch_max", std::to_string(opts.service.batchMax)},
        {"cache_max_entries",
         std::to_string(opts.service.cacheMaxEntries)},
        {"cache_dir",
         opts.cacheDir.empty() ? std::string("(none)") : opts.cacheDir},
    };
    m.timing.wallSec = wall.elapsedSec();
    m.timing.threads = opts.service.workers > 0
                           ? opts.service.workers
                           : globalPool().threadCount();
    m.benchmarks = {
        {"rfhc.serve/completed", static_cast<double>(s.completed),
         "requests", true},
        {"rfhc.serve/ok", static_cast<double>(s.ok), "requests", true},
        {"rfhc.serve/shed", static_cast<double>(s.shed), "requests",
         false},
        {"rfhc.serve/timeouts", static_cast<double>(s.timeouts),
         "requests", false},
    };
    if (!opts.manifestPath.empty()) {
        if (!writeManifest(opts.manifestPath, m)) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         opts.manifestPath.c_str());
            return 1;
        }
        std::fprintf(stderr, "rfhc: wrote manifest %s\n",
                     opts.manifestPath.c_str());
    }
    if (!opts.traceEventsPath.empty()) {
        if (!TraceEventLog::global().writeTo(opts.traceEventsPath)) {
            std::fprintf(stderr, "rfhc: cannot write %s\n",
                         opts.traceEventsPath.c_str());
            return 1;
        }
        std::fprintf(stderr, "rfhc: wrote trace events %s\n",
                     opts.traceEventsPath.c_str());
    }
    emitRunArtifacts(m);
    if (diskCache)
        globalExperimentCache().attachDiskCache(nullptr);
    return rc;
}

} // namespace rfh
