/**
 * @file
 * Persistent batch compile/sim service (`rfhc serve`).
 *
 * BatchService is the transport-independent core: it parses NDJSON
 * request lines (service/protocol.h), admits them into a bounded
 * queue, and dispatches them onto the shared core/parallel thread
 * pool, where each request runs through the ordinary runScheme() path
 * with the process-wide memo/trace caches — so a hot kernel's
 * analyses, baseline and decoded trace are computed once and shared
 * across every later request that needs them, and every response's
 * result document is byte-identical to a direct `rfhc run --json`
 * invocation.
 *
 * Under load a worker drains up to ServiceOptions::batchMax waiting
 * requests per wakeup and executes the slice through one
 * replayBatch() call, which pre-warms every distinct kernel's
 * analyses/trace/decode once before the items fan out; a worker that
 * wakes to a single queued request keeps the historical one-request
 * path (AUTO engine resolves to the direct oracle). Both paths yield
 * byte-identical result documents.
 *
 * Robustness model (the inference-server trifecta):
 *  - **deadlines** — a request may carry `deadline_ms`; expiry before
 *    dispatch returns a structured `deadline_exceeded` error without
 *    running anything, and expiry mid-run cancels cooperatively at
 *    the next phase boundary (ExperimentConfig::cancel). A timed-out
 *    request never poisons the worker: the worker just moves on.
 *  - **load shedding** — when the admission queue is full the request
 *    is answered immediately with a structured `overloaded` error
 *    (carrying the queue capacity) instead of stalling the client;
 *    `rfhc loadgen` retries those with exponential backoff.
 *  - **graceful drain** — drain() stops admission, finishes every
 *    queued request, and joins the workers; late submissions get a
 *    structured `shutting_down` error.
 *
 * Long-lived memory stays bounded: after each request the service
 * polls ExperimentCache::entryCount() and, past the configured
 * budget, quiesces the workers (shared_mutex) and clears the caches.
 *
 * Transports: runServe() serves stdio (`--stdio`) or a Unix domain
 * socket; both write one response line per request line. See
 * docs/service.md for the protocol and operational notes.
 */

#ifndef RFH_SERVICE_SERVER_H
#define RFH_SERVICE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"

namespace rfh {

class ThreadPool;

/** BatchService tuning knobs. */
struct ServiceOptions
{
    /** Concurrent request workers; <= 0 means the pool's size. */
    int workers = 0;
    /** Admitted-but-unstarted requests before shedding. */
    int queueCapacity = 64;
    /**
     * Max run requests one worker drains per wakeup and executes as a
     * single replayBatch() call, amortising per-kernel setup across
     * the slice. A worker that wakes to exactly one queued request
     * keeps the historical single-run path (AUTO engine resolves to
     * the direct oracle); 1 disables batching entirely.
     */
    int batchMax = 8;
    /** Memo-cache entries tolerated before an idle-point clear. */
    std::size_t cacheMaxEntries = 1024;
    /** Pool to dispatch onto; null means globalPool(). */
    ThreadPool *pool = nullptr;
    /**
     * Test instrumentation: when set, every worker calls this right
     * before executing a dequeued run request. Tests use it to hold
     * workers on a latch and fill the queue deterministically.
     */
    std::function<void()> onBeforeHandle;
};

/** Monotonic request accounting (also mirrored into core/metrics). */
struct ServiceStats
{
    std::uint64_t accepted = 0;   ///< Admitted into the queue.
    std::uint64_t completed = 0;  ///< Dequeued and answered.
    std::uint64_t ok = 0;         ///< Answered with a result.
    std::uint64_t errors = 0;     ///< Answered with any error.
    std::uint64_t shed = 0;       ///< Rejected with `overloaded`.
    std::uint64_t timeouts = 0;   ///< Answered `deadline_exceeded`.
};

/** The transport-independent batch service core (see file comment). */
class BatchService
{
  public:
    /** Response delivery: called exactly once per submitted line. */
    using Responder = std::function<void(const std::string &)>;

    explicit BatchService(const ServiceOptions &opts = {});
    /** Drains and joins (idempotent with an explicit drain()). */
    ~BatchService();

    BatchService(const BatchService &) = delete;
    BatchService &operator=(const BatchService &) = delete;

    /** Launch the worker dispatcher; must precede submit(). */
    void start();

    /**
     * Parse and route one request line. Control ops, malformed
     * requests, and shed requests are answered inline on the calling
     * thread; admitted run requests are answered later from a worker.
     * @return false when the line was a shutdown request (the
     * transport should then drain and exit).
     */
    bool submit(const std::string &line, Responder respond);

    /** Stop admission, finish queued requests, join workers. */
    void drain();

    ServiceStats stats() const;

    /**
     * `op:"stats"` response: service counters plus the memo-cache and
     * (when attached) disk-cache counters. The router fans this out to
     * aggregate a fleet-wide cache picture; loadgen reports the disk
     * hit ratio from it.
     */
    std::string makeStatsLine(const std::string &idJson) const;

  private:
    struct Job
    {
        ServiceRequest request;
        Responder respond;
        /** steady_clock deadline in ns since epoch; 0 = none. */
        std::uint64_t deadlineNs = 0;
    };

    void workerLoop();
    /** Answer every job of one drained queue slice. */
    void handleBatch(std::vector<Job> &batch);
    std::string executeRun(const ServiceRequest &req,
                           std::uint64_t deadlineNs);
    /**
     * Resolve the request's kernel source into @p w (registry lookup
     * or inline RPTX parse). @return false with the structured error
     * response in @p errorLine when the source is invalid.
     */
    bool prepareRun(const ServiceRequest &req, Workload &w,
                    std::string &errorLine);
    /** Map a finished run outcome onto its wire envelope. */
    std::string finishRun(const ServiceRequest &req,
                          const RunOutcome &o);
    /** Clear the memo caches once they exceed the budget. */
    void maybeEvictCaches();
    static std::uint64_t nowNs();

    ServiceOptions opts_;
    ThreadPool *pool_ = nullptr;
    int workers_ = 1;

    std::mutex mu_;
    std::condition_variable queueReady_;
    std::deque<Job> queue_;
    bool closed_ = false;
    bool started_ = false;
    std::thread dispatcher_;

    /** Workers hold shared while handling; eviction takes exclusive. */
    std::shared_mutex cacheMu_;

    mutable std::mutex statsMu_;
    ServiceStats stats_;
};

/** `rfhc serve` transport configuration. */
struct ServeOptions
{
    /** Unix socket path; empty means stdio. */
    std::string socketPath;
    ServiceOptions service;
    /** Session manifest output path ("" = only $RFH_MANIFEST). */
    std::string manifestPath;
    /** Chrome-trace span output path ("" = only $RFH_TRACE_EVENTS). */
    std::string traceEventsPath;
    /**
     * Persistent compile-cache directory (core/diskcache.h); empty
     * disables. When set, memo misses consult and populate the disk
     * cache, so a restarted worker skips recompiling every kernel it
     * (or any fleet sibling sharing the directory) has seen.
     */
    std::string cacheDir;
    /** Disk-cache size cap before LRU eviction (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 256ull << 20;
};

/**
 * Serve until shutdown (a `{"op":"shutdown"}` request, stdin EOF, or
 * SIGINT/SIGTERM), then drain gracefully and write the session
 * manifest. @return the process exit code.
 */
int runServe(const ServeOptions &opts);

} // namespace rfh

#endif // RFH_SERVICE_SERVER_H
