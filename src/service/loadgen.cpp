#include "service/loadgen.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/json.h"
#include "core/manifest.h"
#include "core/parallel.h"
#include "core/scheme.h"
#include "core/timing.h"
#include "service/net.h"
#include "service/protocol.h"
#include "workloads/registry.h"

namespace rfh {

namespace {

// Default request mix: small registry kernels and every registered
// scheme, so a modest --requests count still exercises memo-cache
// sharing across clients and every backend's dispatch path. The
// scheme rotation is pulled from the registry so newly registered
// backends join the mix without touching the load generator.
const char *const kMixWorkloads[] = {"vectoradd", "reduction",
                                     "matrixmul", "histogram"};
const int kMixEntries[] = {3, 2, 4, 1};

const std::string &
mixScheme(int i)
{
    static const std::vector<std::string> tokens = [] {
        std::vector<std::string> t;
        for (const SchemeInfo *si :
             SchemeRegistry::instance().schemes())
            t.push_back(si->token);
        return t;
    }();
    return tokens[static_cast<std::size_t>(i) % tokens.size()];
}

/** The deterministic (workload, scheme, entries) of request @p i. */
struct RequestPlan
{
    std::string workload;
    std::string scheme;
    int entries;
};

RequestPlan
planFor(const LoadgenOptions &opts, int i)
{
    RequestPlan p;
    p.workload = !opts.workload.empty()
                     ? opts.workload
                     : kMixWorkloads[i % 4];
    p.scheme = !opts.scheme.empty() ? opts.scheme : mixScheme(i);
    p.entries = opts.entries > 0 ? opts.entries : kMixEntries[i % 4];
    return p;
}

std::string
requestLine(const LoadgenOptions &opts, int i, const RequestPlan &p)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").value(i);
    w.key("op").value("run");
    w.key("workload").value(p.workload);
    w.key("scheme").value(p.scheme);
    w.key("entries").value(p.entries);
    w.key("warps").value(opts.warps);
    if (opts.deadlineMs > 0)
        w.key("deadline_ms").value(opts.deadlineMs);
    w.endObject();
    return w.str();
}

/**
 * The result the service must return for @p p — computed through the
 * same runScheme() path the server uses, in this process.
 */
std::string
expectedResult(const LoadgenOptions &opts, const RequestPlan &p,
               std::string *error)
{
    const Workload *reg = findWorkload(p.workload);
    if (!reg) {
        *error = "unknown workload '" + p.workload + "'";
        return "";
    }
    std::optional<Scheme> s = schemeFromToken(p.scheme);
    if (!s) {
        *error = "unknown scheme '" + p.scheme + "'";
        return "";
    }
    Workload w = *reg;
    w.run.numWarps = opts.warps;
    ExperimentConfig cfg;
    cfg.scheme = *s;
    cfg.entries = p.entries;
    RunOutcome o = runScheme(w, cfg);
    if (!o.ok()) {
        *error = o.error;
        return "";
    }
    return outcomeToJson(o);
}

/** The raw bytes of the "result" member of a success envelope. */
std::string
extractResult(const std::string &envelope)
{
    const std::string marker = "\"result\":";
    std::size_t pos = envelope.find(marker);
    if (pos == std::string::npos || envelope.empty() ||
        envelope.back() != '}')
        return "";
    pos += marker.size();
    return envelope.substr(pos, envelope.size() - pos - 1);
}

/**
 * Log-spaced latency histogram: quarter-octave buckets over
 * microseconds, covering ~1 us to ~5 hours in 256 buckets with a
 * worst-case quantisation error of ~9%. Per-client histograms merge
 * bucket-wise, so percentiles are computed over the whole request
 * population — merging per-client sorted vectors (or worse, maxima)
 * would weight idle clients and busy clients unequally.
 */
class LatencyHistogram
{
  public:
    void
    add(double ms)
    {
        counts_[bucketOf(ms)]++;
        total_++;
    }

    void
    merge(const LatencyHistogram &other)
    {
        for (int i = 0; i < kBuckets; i++)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
    }

    std::uint64_t
    total() const
    {
        return total_;
    }

    /** Value at quantile @p p in [0,1]: geometric bucket midpoint. */
    double
    percentileMs(double p) const
    {
        if (total_ == 0)
            return 0.0;
        std::uint64_t rank = static_cast<std::uint64_t>(
            std::ceil(p * static_cast<double>(total_)));
        rank = std::max<std::uint64_t>(rank, 1);
        std::uint64_t seen = 0;
        for (int i = 0; i < kBuckets; i++) {
            seen += counts_[i];
            if (seen >= rank)
                return std::exp2((i + 0.5) / kBucketsPerOctave) / 1e3;
        }
        return std::exp2(kBuckets / kBucketsPerOctave) / 1e3;
    }

  private:
    static constexpr int kBucketsPerOctave = 4;
    static constexpr int kBuckets = 256;

    static int
    bucketOf(double ms)
    {
        double us = ms * 1e3;
        if (us <= 1.0)
            return 0;
        int b = static_cast<int>(
            std::floor(std::log2(us) * kBucketsPerOctave));
        return std::min(std::max(b, 0), kBuckets - 1);
    }

    std::uint64_t counts_[kBuckets] = {};
    std::uint64_t total_ = 0;
};

/** Per-shard slice of the run (router mode; shard -1 = unknown). */
struct ShardTally
{
    int ok = 0;
    LatencyHistogram latency;
};

/** Per-client tallies, merged after the join. */
struct ClientResult
{
    LatencyHistogram latency;
    std::map<int, ShardTally> shards;
    int ok = 0;
    int mismatches = 0;
    int timeouts = 0;
    int errors = 0;       ///< Non-timeout error responses.
    int retries = 0;      ///< Overloaded responses retried.
    int exhausted = 0;    ///< Gave up after maxRetries.
    bool transportFailed = false;
};

void
clientLoop(const LoadgenOptions &opts, int clientIndex,
           const std::map<std::tuple<std::string, std::string, int>,
                          std::string> &expected,
           ClientResult &out)
{
    int fd = netConnect(opts.socketPath);
    if (fd < 0) {
        out.transportFailed = true;
        return;
    }
    std::string buf, response;
    for (int i = clientIndex; i < opts.requests; i += opts.clients) {
        RequestPlan plan = planFor(opts, i);
        std::string line = requestLine(opts, i, plan);
        Stopwatch sw;
        bool answered = false;
        for (int attempt = 0; attempt <= opts.maxRetries; attempt++) {
            if (!netSendLine(fd, line) || !netReadLine(fd, buf, response)) {
                out.transportFailed = true;
                netClose(fd);
                return;
            }
            JsonParseResult parsed = parseJson(response);
            if (!parsed.ok) {
                out.errors++;
                answered = true;
                break;
            }
            if (parsed.value.boolOr("ok", false)) {
                double ms = sw.elapsedSec() * 1e3;
                int shard = static_cast<int>(
                    parsed.value.numberOr("shard", -1.0));
                out.latency.add(ms);
                out.ok++;
                if (shard >= 0) {
                    ShardTally &t = out.shards[shard];
                    t.ok++;
                    t.latency.add(ms);
                }
                if (opts.verify) {
                    auto it = expected.find(
                        {plan.workload, plan.scheme, plan.entries});
                    if (it == expected.end() ||
                        extractResult(response) != it->second) {
                        out.mismatches++;
                        if (out.mismatches == 1)
                            std::fprintf(
                                stderr,
                                "rfhc loadgen: MISMATCH on request "
                                "%d (%s/%s/%d, shard %d):\n"
                                "  got      %s\n  expected %s\n",
                                i, plan.workload.c_str(),
                                plan.scheme.c_str(), plan.entries,
                                shard,
                                extractResult(response).c_str(),
                                it == expected.end()
                                    ? "<none>"
                                    : it->second.c_str());
                    }
                }
                answered = true;
                break;
            }
            const JsonValue *err = parsed.value.find("error");
            std::string code =
                err ? err->stringOr("code", "") : "";
            if (code == "overloaded") {
                out.retries++;
                // Exponential backoff: 5, 10, 20, ... ms (capped).
                int sleepMs = std::min(5 << std::min(attempt, 7), 500);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleepMs));
                continue;
            }
            if (code == "deadline_exceeded")
                out.timeouts++;
            else
                out.errors++;
            answered = true;
            break;
        }
        if (!answered)
            out.exhausted++;
    }
    netClose(fd);
}

/**
 * Fleet cache counters pulled from the `stats` op after the run
 * (router mode): the disk-cache hit ratio proves whether a restarted
 * fleet actually started warm.
 */
struct FleetStats
{
    bool ok = false;
    double diskHits = 0, diskMisses = 0;
    double memoHits = 0, memoMisses = 0;
    double routed = 0, rerouted = 0, restarts = 0;
};

FleetStats
queryStats(const std::string &socketPath)
{
    FleetStats fs;
    int fd = netConnect(socketPath);
    if (fd < 0)
        return fs;
    std::string buf, response;
    bool got = netSendLine(fd, R"({"id":0,"op":"stats"})") &&
               netReadLine(fd, buf, response);
    netClose(fd);
    if (!got)
        return fs;
    JsonParseResult parsed = parseJson(response);
    if (!parsed.ok || !parsed.value.boolOr("ok", false))
        return fs;
    if (const JsonValue *stats = parsed.value.find("stats")) {
        if (const JsonValue *disk = stats->find("disk")) {
            fs.diskHits = disk->numberOr("hits", 0.0);
            fs.diskMisses = disk->numberOr("misses", 0.0);
        }
        if (const JsonValue *memo = stats->find("memo")) {
            fs.memoHits = memo->numberOr("baseline_hits", 0.0) +
                          memo->numberOr("analysis_hits", 0.0) +
                          memo->numberOr("trace_hits", 0.0);
            fs.memoMisses = memo->numberOr("baseline_misses", 0.0) +
                            memo->numberOr("analysis_misses", 0.0) +
                            memo->numberOr("trace_misses", 0.0);
        }
    }
    if (const JsonValue *router = parsed.value.find("router")) {
        fs.routed = router->numberOr("routed", 0.0);
        fs.rerouted = router->numberOr("rerouted", 0.0);
        fs.restarts = router->numberOr("restarts", 0.0);
    }
    fs.ok = true;
    return fs;
}

} // namespace

int
runLoadgen(const LoadgenOptions &opts)
{
    if (opts.clients < 1 || opts.requests < 1) {
        std::fprintf(stderr,
                     "rfhc loadgen: --clients and --requests must be "
                     ">= 1\n");
        return 2;
    }

    // Precompute the expected result of every distinct configuration
    // in the stream (the mix has at most 20) before opening any
    // connection, so verification never races the measurement.
    std::map<std::tuple<std::string, std::string, int>, std::string>
        expected;
    if (opts.verify) {
        for (int i = 0; i < opts.requests; i++) {
            RequestPlan p = planFor(opts, i);
            auto key =
                std::make_tuple(p.workload, p.scheme, p.entries);
            if (expected.count(key))
                continue;
            std::string error;
            std::string result = expectedResult(opts, p, &error);
            if (result.empty()) {
                std::fprintf(
                    stderr,
                    "rfhc loadgen: cannot compute reference for "
                    "%s/%s/%d: %s\n",
                    p.workload.c_str(), p.scheme.c_str(), p.entries,
                    error.c_str());
                return 2;
            }
            expected.emplace(std::move(key), std::move(result));
        }
    }

    std::vector<ClientResult> results(
        static_cast<std::size_t>(opts.clients));
    Stopwatch wall;
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(opts.clients));
        for (int c = 0; c < opts.clients; c++)
            threads.emplace_back([&opts, c, &expected, &results] {
                clientLoop(opts, c, expected, results[c]);
            });
        for (std::thread &t : threads)
            t.join();
    }
    double wallSec = wall.elapsedSec();

    ClientResult total;
    bool transportFailed = false;
    for (const ClientResult &r : results) {
        total.ok += r.ok;
        total.mismatches += r.mismatches;
        total.timeouts += r.timeouts;
        total.errors += r.errors;
        total.retries += r.retries;
        total.exhausted += r.exhausted;
        transportFailed |= r.transportFailed;
        total.latency.merge(r.latency);
        for (const auto &[shard, t] : r.shards) {
            ShardTally &agg = total.shards[shard];
            agg.ok += t.ok;
            agg.latency.merge(t.latency);
        }
    }
    double p50 = total.latency.percentileMs(0.50);
    double p99 = total.latency.percentileMs(0.99);
    double throughput = wallSec > 0 ? total.ok / wallSec : 0.0;

    std::printf("rfhc loadgen: %d clients, %d requests, %.2fs wall\n",
                opts.clients, opts.requests, wallSec);
    std::printf("  ok %d, errors %d, timeouts %d, retries %d, "
                "exhausted %d\n",
                total.ok, total.errors, total.timeouts, total.retries,
                total.exhausted);
    std::printf("  throughput %.1f req/s, latency p50 %.2f ms, "
                "p99 %.2f ms\n",
                throughput, p50, p99);
    if (opts.verify)
        std::printf("  verify: %d mismatches across %d results\n",
                    total.mismatches, total.ok);

    FleetStats fleet;
    if (opts.router) {
        for (const auto &[shard, t] : total.shards)
            std::printf("  shard %d: %d ok, %.1f req/s, p50 %.2f ms, "
                        "p99 %.2f ms\n",
                        shard, t.ok,
                        wallSec > 0 ? t.ok / wallSec : 0.0,
                        t.latency.percentileMs(0.50),
                        t.latency.percentileMs(0.99));
        fleet = queryStats(opts.socketPath);
        if (fleet.ok) {
            double diskTotal = fleet.diskHits + fleet.diskMisses;
            double memoTotal = fleet.memoHits + fleet.memoMisses;
            std::printf(
                "  disk cache: %.0f hits / %.0f misses (hit ratio "
                "%.2f), memo hit ratio %.2f\n",
                fleet.diskHits, fleet.diskMisses,
                diskTotal > 0 ? fleet.diskHits / diskTotal : 0.0,
                memoTotal > 0 ? fleet.memoHits / memoTotal : 0.0);
            std::printf("  router: %.0f routed, %.0f rerouted, "
                        "%.0f restarts\n",
                        fleet.routed, fleet.rerouted, fleet.restarts);
        } else {
            std::fprintf(stderr,
                         "rfhc loadgen: stats query failed; no cache "
                         "report\n");
        }
    }
    if (transportFailed)
        std::fprintf(stderr,
                     "rfhc loadgen: transport failure (is the server "
                     "running on %s?)\n",
                     opts.socketPath.c_str());

    if (opts.shutdownAfter) {
        int fd = netConnect(opts.socketPath);
        if (fd >= 0) {
            std::string buf, response;
            if (netSendLine(fd, R"({"op":"shutdown"})"))
                netReadLine(fd, buf, response);
            netClose(fd);
        } else {
            std::fprintf(stderr,
                         "rfhc loadgen: could not reconnect to send "
                         "shutdown\n");
            transportFailed = true;
        }
    }

    if (!opts.manifestPath.empty() || !manifestPath().empty()) {
        ManifestInfo m;
        m.tool = "rfhc loadgen";
        m.engine = "service";
        m.config = {
            {"socket", opts.socketPath},
            {"clients", std::to_string(opts.clients)},
            {"requests", std::to_string(opts.requests)},
            {"verify", opts.verify ? "true" : "false"},
            {"router", opts.router ? "true" : "false"},
        };
        m.timing.wallSec = wallSec;
        m.timing.threads = opts.clients;
        m.benchmarks = {
            {"rfhc.loadgen/throughput", throughput, "req/s", true},
            {"rfhc.loadgen/p50", p50, "ms", false},
            {"rfhc.loadgen/p99", p99, "ms", false},
        };
        if (opts.router && fleet.ok) {
            double diskTotal = fleet.diskHits + fleet.diskMisses;
            m.benchmarks.push_back(
                {"rfhc.loadgen/disk_hit_ratio",
                 diskTotal > 0 ? fleet.diskHits / diskTotal : 0.0,
                 "ratio", true});
        }
        if (!opts.manifestPath.empty()) {
            if (!writeManifest(opts.manifestPath, m)) {
                std::fprintf(stderr, "rfhc: cannot write %s\n",
                             opts.manifestPath.c_str());
                return 2;
            }
            std::fprintf(stderr, "rfhc: wrote manifest %s\n",
                         opts.manifestPath.c_str());
        }
        emitRunArtifacts(m);
    }

    bool failed = transportFailed || total.mismatches > 0 ||
                  total.exhausted > 0 || total.errors > 0 ||
                  (total.timeouts > 0 && opts.deadlineMs <= 0);
    return failed ? 1 : 0;
}

} // namespace rfh
