/**
 * @file
 * Reproduces Section 6.5: instruction-encoding overhead.
 *
 * The software hierarchy needs one end-of-strand bit per instruction
 * (the register namespace absorbs the operand-level encoding), which
 * costs ~0.3% of chip power against a 5.8% chip-wide saving. Even a
 * pessimistic 5 extra bits per instruction leaves >=4.3% net savings.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/report.h"
#include "energy/encoding_overhead.h"

using namespace rfh;

int
main()
{
    bench::header("Section 6.5: instruction encoding overhead",
                  "1 strand bit -> 0.3% chip overhead, net 5.5% saved; "
                  "5 bits worst case -> net >= 4.3%");

    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;
    double rf_savings = 1.0 - runAllWorkloads(cfg).normalizedEnergy();

    EncodingOverheadModel eo;
    TextTable t({"Extra bits", "Fetch/decode increase", "Chip overhead",
                 "Net chip savings"});
    for (int bits : {1, 2, 3, 4, 5}) {
        t.addRow({std::to_string(bits),
                  pct(eo.fetchDecodeIncrease(bits)),
                  pct(eo.chipOverhead(bits)),
                  pct(eo.netChipSavings(rf_savings, bits))});
    }
    std::printf("\nMeasured register-file savings: %s\n\n%s\n",
                pct(rf_savings).c_str(), t.str().c_str());

    bench::compare("chip overhead of 1 strand bit (%)", 0.3,
                   100.0 * eo.chipOverhead(1));
    bench::compare("net chip savings with 1 bit (%)", 5.5,
                   100.0 * eo.netChipSavings(rf_savings, 1));
    bench::compare("net chip savings with 5 bits (%)", 4.3,
                   100.0 * eo.netChipSavings(rf_savings, 5));
    return 0;
}
