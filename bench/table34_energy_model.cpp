/**
 * @file
 * Reproduces Tables 3 and 4: the energy model constants and the
 * derived per-32-bit-operand costs the allocator actually works with.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "energy/energy_model.h"

using namespace rfh;

int
main()
{
    bench::header("Tables 3 & 4: energy model",
                  "ORF access energy by size; wire energy by distance");

    EnergyParams p;
    TextTable t3({"Entries", "Read pJ/128b", "Write pJ/128b"});
    for (int e = 1; e <= kMaxOrfEntries; e++)
        t3.addRow({std::to_string(e), fmt(EnergyParams::orfReadPJ(e), 1),
                   fmt(EnergyParams::orfWritePJ(e), 1)});
    std::printf("\nTable 3: ORF access energy\n%s\n", t3.str().c_str());

    TextTable t4({"Parameter", "Value"});
    t4.addRow({"MRF read / write (pJ per 128b)",
               fmt(p.mrfReadPJ, 1) + " / " + fmt(p.mrfWritePJ, 1)});
    t4.addRow({"LRF read / write (pJ per 128b)",
               fmt(p.lrfReadPJ, 1) + " / " + fmt(p.lrfWritePJ, 1)});
    t4.addRow({"wire energy (pJ/mm per 32b)", fmt(p.wirePJPerMM, 1)});
    t4.addRow({"MRF distance to private / shared (mm)",
               fmt(p.mrfDistPrivateMM, 2) + " / " +
                   fmt(p.mrfDistSharedMM, 2)});
    t4.addRow({"ORF distance to private / shared (mm)",
               fmt(p.orfDistPrivateMM, 2) + " / " +
                   fmt(p.orfDistSharedMM, 2)});
    t4.addRow({"LRF distance to private (mm)",
               fmt(p.lrfDistPrivateMM, 2)});
    std::printf("Table 4: modelling parameters\n%s\n", t4.str().c_str());

    TextTable d({"Level", "Datapath", "Read pJ/32b", "Write pJ/32b"});
    EnergyModel em(p, 3);
    d.addRow({"MRF", "private",
              fmt(em.readEnergy(Level::MRF, Datapath::PRIVATE)),
              fmt(em.writeEnergy(Level::MRF, Datapath::PRIVATE))});
    d.addRow({"MRF", "shared",
              fmt(em.readEnergy(Level::MRF, Datapath::SHARED)),
              fmt(em.writeEnergy(Level::MRF, Datapath::SHARED))});
    d.addRow({"ORF(3)", "private",
              fmt(em.readEnergy(Level::ORF, Datapath::PRIVATE)),
              fmt(em.writeEnergy(Level::ORF, Datapath::PRIVATE))});
    d.addRow({"ORF(3)", "shared",
              fmt(em.readEnergy(Level::ORF, Datapath::SHARED)),
              fmt(em.writeEnergy(Level::ORF, Datapath::SHARED))});
    d.addRow({"LRF", "private",
              fmt(em.readEnergy(Level::LRF, Datapath::PRIVATE)),
              fmt(em.writeEnergy(Level::LRF, Datapath::PRIVATE))});
    std::printf("Derived per-operand costs (access + wire)\n%s\n",
                d.str().c_str());

    double mrf_wire_priv = em.wireEnergy(Level::MRF, Datapath::PRIVATE);
    bench::compare("MRF/ORF private wire ratio", 5.0,
                   mrf_wire_priv / em.wireEnergy(Level::ORF,
                                                 Datapath::PRIVATE));
    bench::compare("MRF/LRF private wire ratio", 20.0,
                   mrf_wire_priv /
                       EnergyModel(p, 3, false).wireEnergy(
                           Level::LRF, Datapath::PRIVATE));
    return 0;
}
