/**
 * @file
 * Reproduces Figure 13: access + wire energy of every register file
 * organisation, normalised to the single-level baseline, versus
 * entries per thread. This is the paper's headline chart: the best
 * software three-level design (3-entry ORF + split LRF) saves ~54% of
 * register file energy, versus ~34% for the hardware RFC and ~41% for
 * a three-level hardware design (best at 6 entries).
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/json.h"
#include "core/report.h"
#include "core/sweep.h"
#include "energy/encoding_overhead.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 13: normalised register file energy",
                  "SW LRF split @3 entries saves 54%; HW RFC saves 34%; "
                  "HW LRF saves 41% @6");

    ExperimentConfig cfg;
    std::vector<Scheme> schemes = {Scheme::HW_TWO_LEVEL,
                                   Scheme::HW_THREE_LEVEL,
                                   Scheme::SW_TWO_LEVEL,
                                   Scheme::SW_THREE_LEVEL};
    SweepTiming timing;
    auto points = sweepEntries(schemes, cfg, nullptr, &timing);

    TextTable t({"Entries", "HW", "HW LRF", "SW", "SW LRF split"});
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        std::vector<std::string> row = {std::to_string(e)};
        for (Scheme s : schemes) {
            for (const auto &p : points)
                if (p.scheme == s && p.entries == e)
                    row.push_back(fmt(p.outcome.normalizedEnergy(), 3));
        }
        t.addRow(row);
    }
    std::printf("\n%s\n", t.str().c_str());

    const SweepPoint *hw = bestPoint(points, Scheme::HW_TWO_LEVEL);
    const SweepPoint *hw3 = bestPoint(points, Scheme::HW_THREE_LEVEL);
    const SweepPoint *sw = bestPoint(points, Scheme::SW_TWO_LEVEL);
    const SweepPoint *sw3 = bestPoint(points, Scheme::SW_THREE_LEVEL);

    bench::compare("HW RFC best savings (%)", 34.0,
                   100.0 * (1 - hw->outcome.normalizedEnergy()));
    bench::compare("HW three-level best savings (%)", 41.0,
                   100.0 * (1 - hw3->outcome.normalizedEnergy()));
    bench::compare("SW two-level best savings (%)", 45.0,
                   100.0 * (1 - sw->outcome.normalizedEnergy()));
    bench::compare("SW LRF split best savings (%)", 54.0,
                   100.0 * (1 - sw3->outcome.normalizedEnergy()));
    std::printf("  best sizes: HW=%d HW-LRF=%d SW=%d SW-LRF=%d "
                "(paper: 3 / 6 / 3 / 3)\n",
                hw->entries, hw3->entries, sw->entries, sw3->entries);

    // Split vs unified LRF (Section 6.4: ~4% energy apart).
    ExperimentConfig uni;
    uni.scheme = Scheme::SW_THREE_LEVEL;
    uni.entries = sw3->entries;
    uni.splitLRF = false;
    double uni_e = runAllWorkloads(uni).normalizedEnergy();
    bench::compare("split-LRF gain over unified (rel %)", 4.0,
                   100.0 * (uni_e - sw3->outcome.normalizedEnergy()) /
                       uni_e);

    // Partial-range + read-operand allocation gain (Section 6.4: 3-4%).
    ExperimentConfig plain;
    plain.scheme = Scheme::SW_THREE_LEVEL;
    plain.entries = sw3->entries;
    plain.partialRanges = false;
    plain.readOperands = false;
    double plain_e = runAllWorkloads(plain).normalizedEnergy();
    bench::compare("partial+read-operand energy gain (pp)", 3.5,
                   100.0 * (plain_e - sw3->outcome.normalizedEnergy()));

    // SW improvement over HW (Section 6.4: 44% better at best points,
    // 22% for two-level vs RFC).
    bench::compare("SW-3L improvement over HW RFC (rel %)", 44.0,
                   100.0 * (hw->outcome.normalizedEnergy() -
                            sw3->outcome.normalizedEnergy()) /
                       (1 - hw->outcome.normalizedEnergy()));
    bench::compare("SW-2L improvement over HW RFC (rel %)", 22.0,
                   100.0 * (hw->outcome.normalizedEnergy() -
                            sw->outcome.normalizedEnergy()) /
                       hw->outcome.normalizedEnergy());

    // Chip-level impact (Section 6.4: 8.3% of SM power, 5.8% chip).
    EncodingOverheadModel eo;
    double savings = 1 - sw3->outcome.normalizedEnergy();
    bench::compare("chip-wide dynamic power saved (%)", 5.8,
                   100.0 * eo.registerFileShare * savings);

    PhaseTimes phases;
    for (const auto &p : points)
        phases.add(p.outcome.phases);
    std::printf("\n  %s\n", timingSummary(timing, phases).c_str());
    if (std::getenv("RFH_TIMING_JSON"))
        std::printf("%s\n", sweepTimingsToJson(points, timing).c_str());

    // The benchmark names match the "fig13" section of BENCH_<n>.json
    // snapshots, so a manifest diffs directly against one.
    bench::emitArtifacts(
        "fig13_energy", timing, phases,
        {{"schemes", "HW,HW_LRF,SW,SW_LRF"},
         {"points", std::to_string(points.size())}},
        {{"fig13/wallSec", timing.wallSec, "sec", false},
         {"fig13/instrPerSec", phases.instrPerSec(), "instr/s", true}});
    return 0;
}
