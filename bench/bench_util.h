/**
 * @file
 * Shared helpers for the reproduction harness binaries.
 */

#ifndef RFH_BENCH_BENCH_UTIL_H
#define RFH_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/manifest.h"
#include "core/timing.h"

namespace rfh::bench {

/** Print a section header for one reproduced artifact. */
inline void
header(const char *artifact, const char *claim)
{
    std::printf("=============================================================="
                "==\n");
    std::printf("%s\n", artifact);
    std::printf("Paper: %s\n", claim);
    std::printf("--------------------------------------------------------------"
                "--\n");
}

/** Print a paper-vs-measured comparison line. */
inline void
compare(const char *what, double paper, double measured)
{
    std::printf("  %-44s paper %6.2f   measured %6.2f\n", what, paper,
                measured);
}

/**
 * End-of-harness observability hook: build an rfh-manifest-v1 record
 * for this run and emit it to $RFH_MANIFEST (and the chrome-trace span
 * log to $RFH_TRACE_EVENTS) when those variables are set. When
 * @p benchmarks is empty a default wallSec / instrPerSec pair named
 * after @p tool is recorded so every harness is bench-diff-able.
 */
inline void
emitArtifacts(const char *tool, const SweepTiming &timing,
              const PhaseTimes &phases,
              std::vector<std::pair<std::string, std::string>> config = {},
              std::vector<BenchEntry> benchmarks = {})
{
    ManifestInfo m;
    m.tool = tool;
    m.engine = "replay";
    m.config = std::move(config);
    m.timing = timing;
    m.phases = phases;
    m.benchmarks = std::move(benchmarks);
    if (m.benchmarks.empty()) {
        m.benchmarks = {
            {std::string(tool) + "/wallSec", timing.wallSec, "sec",
             false},
            {std::string(tool) + "/instrPerSec", phases.instrPerSec(),
             "instr/s", true},
        };
    }
    emitRunArtifacts(m);
}

} // namespace rfh::bench

#endif // RFH_BENCH_BENCH_UTIL_H
