/**
 * @file
 * Shared helpers for the reproduction harness binaries.
 */

#ifndef RFH_BENCH_BENCH_UTIL_H
#define RFH_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace rfh::bench {

/** Print a section header for one reproduced artifact. */
inline void
header(const char *artifact, const char *claim)
{
    std::printf("=============================================================="
                "==\n");
    std::printf("%s\n", artifact);
    std::printf("Paper: %s\n", claim);
    std::printf("--------------------------------------------------------------"
                "--\n");
}

/** Print a paper-vs-measured comparison line. */
inline void
compare(const char *what, double paper, double measured)
{
    std::printf("  %-44s paper %6.2f   measured %6.2f\n", what, paper,
                measured);
}

} // namespace rfh::bench

#endif // RFH_BENCH_BENCH_UTIL_H
