/**
 * @file
 * Reproduces the two-level warp scheduler performance validation
 * (Section 6, first claim; simulation parameters in Table 2): with 8
 * active warps out of 32 machine-resident warps, the SM suffers no
 * performance penalty relative to scheduling all 32 warps at once.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "sim/perf_sim.h"
#include "workloads/registry.h"

using namespace rfh;

int
main()
{
    bench::header("Table 2 / two-level scheduler performance",
                  "no performance loss with >=8 active warps (of 32)");

    PerfConfig base;
    std::printf("\nSimulation parameters (Table 2): 32-wide SIMT, ALU %d, "
                "SFU %d, shared mem %d,\nTEX %d, DRAM %d cycles; %d "
                "resident warps.\n\n",
                base.aluLatency, base.sfuLatency, base.sharedMemLatency,
                base.texLatency, base.dramLatency, base.numWarps);

    const int kActiveSet[] = {1, 2, 4, 6, 8, 12, 16, 32};

    TextTable t({"Benchmark", "A=1", "A=2", "A=4", "A=6", "A=8", "A=12",
                 "A=16", "A=32"});
    double sum8 = 0, sum32 = 0;
    int n = 0;
    const char *samples[] = {"scalarprod", "matrixmul", "mandelbrot",
                             "nbody", "histogram", "montecarlo",
                             "hotspot", "sortingnetworks"};
    for (const char *name : samples) {
        const Workload &w = workloadByName(name);
        std::vector<std::string> row = {w.name};
        double ipc8 = 0, ipc32 = 0;
        for (int a : kActiveSet) {
            PerfConfig cfg = base;
            cfg.activeWarps = a;
            PerfResult res = runPerfSim(w.kernel, cfg);
            row.push_back(fmt(res.ipc(), 3));
            if (a == 8)
                ipc8 = res.ipc();
            if (a == 32)
                ipc32 = res.ipc();
        }
        t.addRow(row);
        sum8 += ipc8;
        sum32 += ipc32;
        n++;
    }
    std::printf("IPC vs active-set size A (two-level scheduler; A=32 is "
                "the flat scheduler)\n%s\n", t.str().c_str());

    bench::compare("IPC(A=8) / IPC(A=32), average (%)", 100.0,
                   100.0 * (sum8 / n) / (sum32 / n));
    return 0;
}
