/**
 * @file
 * Section 7 follow-through: the paper only *estimates* the value of
 * reordering instructions to shorten producer-consumer distances
 * (idealised: -9%; realistic guess: -6%). This harness runs our actual
 * lifetime-shortening list scheduler (compiler/scheduler.*) and the
 * linear-scan pre-allocator on every workload and measures the real
 * effect on hierarchy energy.
 */

#include <cstdio>

#include "bench_util.h"
#include "compiler/allocator.h"
#include "compiler/regalloc.h"
#include "compiler/scheduler.h"
#include "core/report.h"
#include "sim/baseline_exec.h"
#include "sim/sw_exec.h"
#include "workloads/registry.h"

using namespace rfh;

namespace {

double
energyOf(const Kernel &kernel, const RunConfig &run,
         const AllocOptions &opts, const EnergyParams &params,
         double *base_out)
{
    Kernel k = kernel;
    HierarchyAllocator alloc(params, opts);
    alloc.run(k);
    SwExecConfig sc;
    sc.run = run;
    SwExecResult res = runSwHierarchy(k, opts, sc);
    if (!res.ok()) {
        std::fprintf(stderr, "verification failure: %s\n",
                     res.error.c_str());
        std::exit(1);
    }
    EnergyModel em(params, opts.orfEntries, opts.splitLRF);
    if (base_out)
        *base_out = runBaseline(kernel, run).totalEnergyPJ(em);
    return res.counts.totalEnergyPJ(em);
}

} // namespace

int
main()
{
    bench::header("Section 7: real instruction scheduling & regalloc",
                  "paper estimates -6..-9% from rescheduling; this runs "
                  "an actual lifetime-shortening scheduler");

    EnergyParams params;
    AllocOptions opts;
    opts.orfEntries = 3;
    opts.useLRF = true;
    opts.splitLRF = true;

    double e_plain = 0, e_sched = 0, e_regalloc = 0, base = 0;
    long lifetime_reduction = 0;
    int moved = 0, spilled_kernels = 0;
    for (const Workload &w : allWorkloads()) {
        double b = 0;
        e_plain += energyOf(w.kernel, w.run, opts, params, &b);
        base += b;

        Kernel sched = w.kernel;
        ScheduleStats ss = scheduleKernel(sched);
        lifetime_reduction += ss.lifetimeReduction;
        moved += ss.instructionsMoved;
        e_sched += energyOf(sched, w.run, opts, params, nullptr);

        // Tight architectural budget: how much hierarchy benefit
        // survives register pressure and spill code?
        Kernel tight = w.kernel;
        RegAllocOptions ro;
        ro.numRegs = 12;
        RegAllocStats rs = allocateRegisters(tight, ro);
        if (rs.anySpills())
            spilled_kernels++;
        // Normalise against the *transformed* kernel's own baseline so
        // spill traffic affects both sides equally.
        double tb = 0;
        double te = energyOf(tight, w.run, opts, params, &tb);
        e_regalloc += te / tb * b;
    }

    TextTable t({"Pipeline", "Normalised energy", "Savings"});
    t.addRow({"as written (scheduled by hand/generator)",
              fmt(e_plain / base, 3), pct(1 - e_plain / base)});
    t.addRow({"+ lifetime-shortening list scheduler",
              fmt(e_sched / base, 3), pct(1 - e_sched / base)});
    t.addRow({"12-register linear-scan budget (with spills)",
              fmt(e_regalloc / base, 3), pct(1 - e_regalloc / base)});
    std::printf("\n%s\n", t.str().c_str());
    std::printf("Scheduler moved %d instructions; total "
                "producer-consumer distance reduced by %ld slots; "
                "%d/36 kernels spilled under the tight budget.\n\n",
                moved, lifetime_reduction, spilled_kernels);

    bench::compare("rescheduling energy gain (rel %)", 6.0,
                   100.0 * (e_plain - e_sched) / e_plain);
    return 0;
}
