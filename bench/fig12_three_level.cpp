/**
 * @file
 * Reproduces Figure 12: reads and writes of the three-level hierarchy
 * (hardware LRF+RFC+MRF vs software LRF+ORF+MRF), normalised to the
 * single-level register file. Also prints the Section 6.2/6.3
 * headlines: the LRF captures ~30% of reads despite its single entry,
 * software cuts overhead writes from ~40% to <10%, and a split LRF
 * serves ~20% more reads than a unified one.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "core/sweep.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 12: three-level hierarchy access breakdown",
                  "the 1-entry LRF captures ~30% of all reads under "
                  "software control");

    AccessCounts base = aggregateBaselineCounts();
    ExperimentConfig cfg;
    auto points = sweepEntries({Scheme::HW_THREE_LEVEL,
                                Scheme::SW_THREE_LEVEL}, cfg);

    TextTable reads({"Entries", "HW LRF", "HW RFC", "HW MRF",
                     "SW LRF", "SW ORF", "SW MRF"});
    TextTable writes({"Entries", "HW LRF", "HW RFC", "HW MRF",
                      "SW LRF", "SW ORF", "SW MRF"});
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        AccessBreakdown hw, sw;
        for (const auto &p : points) {
            if (p.entries != e)
                continue;
            AccessBreakdown b = normalizeAccesses(p.outcome.counts, base);
            if (p.scheme == Scheme::HW_THREE_LEVEL)
                hw = b;
            else
                sw = b;
        }
        reads.addRow({std::to_string(e), pct(hw.lrfReads),
                      pct(hw.orfReads), pct(hw.mrfReads),
                      pct(sw.lrfReads), pct(sw.orfReads),
                      pct(sw.mrfReads)});
        writes.addRow({std::to_string(e), pct(hw.lrfWrites),
                       pct(hw.orfWrites), pct(hw.mrfWrites),
                       pct(sw.lrfWrites), pct(sw.orfWrites),
                       pct(sw.mrfWrites)});
    }
    std::printf("\n(a) Reads, normalised to baseline\n%s",
                reads.str().c_str());
    std::printf("\n(b) Writes, normalised to baseline\n%s\n",
                writes.str().c_str());

    // Headline comparisons at 3 ORF entries per thread.
    AccessBreakdown sw3, hw3;
    AccessCounts sw3_counts, hw3_counts;
    for (const auto &p : points) {
        if (p.entries != 3)
            continue;
        if (p.scheme == Scheme::SW_THREE_LEVEL) {
            sw3 = normalizeAccesses(p.outcome.counts, base);
            sw3_counts = p.outcome.counts;
        } else {
            hw3 = normalizeAccesses(p.outcome.counts, base);
            hw3_counts = p.outcome.counts;
        }
    }
    bench::compare("SW LRF share of all reads (%)", 30.0,
                   100.0 * sw3.lrfReads / sw3.totalReads());
    bench::compare("HW overhead writes (% of baseline)", 40.0,
                   100.0 * (hw3.totalWrites() - 1.0));
    bench::compare("SW overhead writes (% of baseline)", 10.0,
                   100.0 * (sw3.totalWrites() - 1.0));

    // Section 6.3: split vs unified LRF read capture.
    ExperimentConfig unified = cfg;
    unified.scheme = Scheme::SW_THREE_LEVEL;
    unified.entries = 3;
    unified.splitLRF = false;
    AccessBreakdown uni = normalizeAccesses(runAllWorkloads(unified).counts,
                                            base);
    bench::compare("split-LRF read increase over unified (rel %)", 20.0,
                   uni.lrfReads > 0
                       ? 100.0 * (sw3.lrfReads - uni.lrfReads) /
                           uni.lrfReads
                       : 0.0);
    return 0;
}
