/**
 * @file
 * Reproduces Figure 2: register value usage patterns.
 *
 * (a) Percentage of all values read 0, 1, 2, or >2 times per suite.
 * (b) Lifetime (instructions) of values that are read exactly once.
 *
 * Paper headline: up to 70% of values are read at most once, and ~50%
 * of all values are read exactly once within three instructions of
 * being produced. These short-lived values motivate the LRF/ORF.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "sim/baseline_exec.h"
#include "workloads/registry.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 2: register usage patterns",
                  "most values read <=1 time, usually within 3 "
                  "instructions");

    TextTable a({"Suite", "Read 0", "Read 1", "Read 2", "Read >2"});
    TextTable b({"Suite", "Life 1", "Life 2", "Life 3", "Life >3"});
    UsageStats total;
    for (const std::string &suite : suiteNames()) {
        UsageStats us;
        for (const Workload *w : suiteWorkloads(suite))
            us.add(collectUsageStats(w->kernel, w->run));
        total.add(us);
        a.addRow({suite, pct(us.fracRead(0)), pct(us.fracRead(1)),
                  pct(us.fracRead(2)), pct(us.fracRead(3))});
        double r1 = static_cast<double>(us.read1);
        b.addRow({suite, pct(us.life1 / r1), pct(us.life2 / r1),
                  pct(us.life3 / r1), pct(us.lifeMore / r1)});
    }

    std::printf("\n(a) Times each produced value is read\n%s",
                a.str().c_str());
    std::printf("\n(b) Lifetime of read-once values (instructions)\n%s\n",
                b.str().c_str());

    double read_le1 = total.fracRead(0) + total.fracRead(1);
    double once_within3 = total.totalValues
        ? static_cast<double>(total.life1 + total.life2 + total.life3) /
            total.totalValues
        : 0.0;
    bench::compare("values read <=1 time (%)", 70.0, 100.0 * read_le1);
    bench::compare("read once within 3 instructions (% of all)", 50.0,
                   100.0 * once_within3);
    std::printf("  %-44s paper %6.2f   measured %6.2f\n",
                "values consumed by shared datapath (%)", 7.0,
                100.0 * total.sharedConsumed / total.totalValues);
    std::printf("  %-44s paper %6.2f   measured %6.2f\n",
                "shared-consumed values produced privately (%)", 70.0,
                total.sharedConsumed
                    ? 100.0 * total.sharedConsumedPrivateProduced /
                        total.sharedConsumed
                    : 0.0);
    std::printf("  %-44s paper %6.2f   measured %6.2f\n",
                "register reads per instruction", 1.6,
                static_cast<double>(total.regReads) / total.instructions);
    std::printf("  %-44s paper %6.2f   measured %6.2f\n",
                "register writes per instruction", 0.8,
                static_cast<double>(total.regWrites) /
                    total.instructions);
    std::printf("  %-44s paper %6s   measured %5.1f%%\n",
                "multi-read values read in bursts (gap<=3)", "most",
                total.multiReads
                    ? 100.0 * total.burstyMultiReads / total.multiReads
                    : 0.0);
    return 0;
}
