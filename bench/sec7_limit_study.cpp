/**
 * @file
 * Reproduces the Section 7 limit study: how much energy headroom
 * remains beyond the realistic three-level software design.
 */

#include <cstdio>

#include "bench_util.h"
#include "compiler/limit_study.h"
#include "core/report.h"

using namespace rfh;

int
main()
{
    bench::header("Section 7: register hierarchy limit study",
                  "ideal all-LRF -87%; all-ORF(5) -61%; oracle variable "
                  "allocation -6%; resident-past-backward ~5%; "
                  "rescheduling ideals -6..-9%; never-flush -8%");

    LimitStudyResults r = runLimitStudy();

    TextTable t({"Experiment", "Normalised energy", "Savings"});
    auto row = [&](const char *name, double v) {
        t.addRow({name, fmt(v, 3), pct(1 - v)});
    };
    row("realistic best (3-entry ORF + split LRF)", r.realistic);
    row("ideal: every access in the LRF", r.idealAllLrf);
    row("ideal: every access in a 5-entry ORF", r.idealAllOrf5);
    row("oracle variable ORF allocation", r.variableOracle);
    row("variable + 6 active warps (4 entries @3 cost)",
        r.fewerActiveWarps);
    row("HW RFC resident past backward branches",
        r.hwResidentPastBackward);
    row("HW RFC flushed at backward branches", r.hwFlushAtBackward);
    row("ideal rescheduling: 8 entries @3-entry cost",
        r.sched8EntriesAt3);
    row("realistic rescheduling: 5 entries @3-entry cost",
        r.sched5EntriesAt3);
    row("never flush ORF/LRF across deschedules", r.neverFlush);
    std::printf("\n%s\n", t.str().c_str());

    bench::compare("ideal all-LRF savings (%)", 87.0,
                   100.0 * (1 - r.idealAllLrf));
    bench::compare("ideal all-ORF(5) savings (%)", 61.0,
                   100.0 * (1 - r.idealAllOrf5));
    bench::compare("HW resident-vs-flush backward delta (rel %)", 5.0,
                   100.0 * (r.hwFlushAtBackward -
                            r.hwResidentPastBackward) /
                       r.hwFlushAtBackward);
    bench::compare("never-flush gain over realistic (rel %)", 8.0,
                   100.0 * (r.realistic - r.neverFlush) / r.realistic);
    std::printf("\nNote: the oracle experiment grants per-kernel (not "
                "per-strand) size choice;\nsee EXPERIMENTS.md for the "
                "granularity discussion.\n");
    return 0;
}
