/**
 * @file
 * Ablation study over the allocator's design choices.
 *
 * The paper reports a few of these deltas in prose (Sections 6.1-6.4);
 * this harness isolates every mechanism one at a time against the full
 * three-level design so each one's contribution is visible:
 *
 *   - partial-range allocation (Section 4.3)
 *   - read-operand allocation (Section 4.4)
 *   - the LRF level itself and the split-LRF banking (Sections 3.2/6.3)
 *   - the Figure 5(b) uncertain-merge strand rule
 *   - priority by savings-per-slot vs plain savings is structural and
 *     not switchable, but the greedy queue's value shows up in the
 *     "no upper levels" row (baseline).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/parallel.h"
#include "core/report.h"
#include "core/timing.h"

using namespace rfh;

namespace {

PhaseTimes g_phases;

double
norm(ExperimentConfig cfg)
{
    RunOutcome o = runAllWorkloads(cfg);
    if (!o.ok()) {
        std::fprintf(stderr, "verification failure: %s\n",
                     o.error.c_str());
        std::exit(1);
    }
    g_phases.add(o.phases);
    return o.normalizedEnergy();
}

} // namespace

int
main()
{
    bench::header("Ablations: one mechanism at a time",
                  "partial ranges ~1-2pp, read operands ~2-3pp, LRF "
                  "~4-6pp, split ~0.5pp");
    Stopwatch wall;

    ExperimentConfig full;
    full.scheme = Scheme::SW_THREE_LEVEL;
    full.entries = 3;
    double e_full = norm(full);

    TextTable t({"Configuration", "Normalised energy", "Savings",
                 "Delta vs full"});
    auto row = [&](const char *name, double e) {
        t.addRow({name, fmt(e, 3), pct(1 - e),
                  fmt(100 * (e - e_full), 2) + " pp"});
    };
    row("full design (3-entry ORF + split LRF)", e_full);

    {
        ExperimentConfig c = full;
        c.partialRanges = false;
        row("- partial-range allocation", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.readOperands = false;
        row("- read-operand allocation", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.partialRanges = false;
        c.readOperands = false;
        row("- both extensions (baseline Fig. 7 algorithm)", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.splitLRF = false;
        row("- split LRF (unified single bank)", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.scheme = Scheme::SW_TWO_LEVEL;
        row("- LRF level entirely (two-level ORF+MRF)", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.strandOptions.cutAtUncertainMerge = false;
        row("- Fig. 5(b) uncertain-merge endpoints", norm(c));
    }
    {
        // Non-Figure-4 variant: let SFU/MEM/TEX results enter the LRF
        // (the paper's LRF hangs off the ALU result bus, so loads
        // cannot use it; this measures what that choice costs).
        ExperimentConfig c = full;
        c.lrfAllowSharedProducers = true;
        row("+ shared-produced values in the LRF (variant)", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.scheme = Scheme::HW_THREE_LEVEL;
        c.entries = 6;
        row("hardware control instead (HW LRF+RFC @6)", norm(c));
    }
    {
        ExperimentConfig c = full;
        c.scheme = Scheme::BASELINE;
        row("no hierarchy at all (flat MRF)", norm(c));
    }
    std::printf("\n%s\n", t.str().c_str());
    std::printf("Positive deltas mean the removed mechanism was saving "
                "energy.\n");

    SweepTiming timing;
    timing.wallSec = wall.elapsedSec();
    timing.cpuSec = g_phases.totalSec();
    timing.threads = globalPool().threadCount();
    std::printf("\n%s\n", timingSummary(timing, g_phases).c_str());
    bench::emitArtifacts("ablations", timing, g_phases);
    return 0;
}
