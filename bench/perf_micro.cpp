/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: allocator
 * throughput, simulator throughput, and analysis costs. These guard
 * against performance regressions in the library (the figure harnesses
 * re-run every workload many times).
 */

#include <benchmark/benchmark.h>

#include "compiler/allocator.h"
#include "core/memo.h"
#include "core/parallel.h"
#include "core/sweep.h"
#include "ir/cfg_analysis.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/pipeline.h"
#include "sim/pipeline_account.h"
#include "sim/sw_exec.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace {

using namespace rfh;

const Kernel &
bigKernel()
{
    return workloadByName("nbody").kernel;
}

void
BM_CfgAndLiveness(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    for (auto _ : state) {
        Cfg cfg(k);
        Liveness live(k, cfg);
        benchmark::DoNotOptimize(live.liveIn(0));
    }
}
BENCHMARK(BM_CfgAndLiveness);

void
BM_ReachingDefs(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    Cfg cfg(k);
    for (auto _ : state) {
        ReachingDefs rd(k, cfg);
        benchmark::DoNotOptimize(rd.numDefs());
    }
}
BENCHMARK(BM_ReachingDefs);

void
BM_AllocatorThreeLevel(benchmark::State &state)
{
    Kernel k = bigKernel();
    AllocOptions opts;
    opts.orfEntries = static_cast<int>(state.range(0));
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    for (auto _ : state) {
        AllocStats stats = alloc.run(k);
        benchmark::DoNotOptimize(stats.orfValuesFull);
    }
    state.SetItemsProcessed(state.iterations() * k.numInstrs());
}
BENCHMARK(BM_AllocatorThreeLevel)->Arg(1)->Arg(3)->Arg(8);

void
BM_BaselineExec(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    RunConfig run;
    for (auto _ : state) {
        AccessCounts c = runBaseline(k, run);
        benchmark::DoNotOptimize(c.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                c.instructions);
    }
}
BENCHMARK(BM_BaselineExec);

void
BM_HwCacheExec(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    HwCacheConfig cfg;
    cfg.useLRF = true;
    for (auto _ : state) {
        AccessCounts c = runHwCache(k, cfg);
        benchmark::DoNotOptimize(c.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                c.instructions);
    }
}
BENCHMARK(BM_HwCacheExec);

void
BM_SwExec(benchmark::State &state)
{
    Kernel k = bigKernel();
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    for (auto _ : state) {
        SwExecResult r = runSwHierarchy(k, opts);
        benchmark::DoNotOptimize(r.counts.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                r.counts.instructions);
    }
}
BENCHMARK(BM_SwExec);

// ---- Execution-engine benchmarks ----
//
// BM_TraceRecord prices the one-time recording of the pre-decoded
// dynamic stream; BM_ExecDirect vs. BM_ExecReplay compare the two
// execute-phase engines on the same annotated kernel. Replay amortises
// one recording over every (scheme, entries) grid cell, so its
// per-cell win is the items/sec ratio of these two benchmarks.

void
BM_TraceRecord(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    for (auto _ : state) {
        DecodedTrace t = recordDecodedTrace(w.kernel, w.run);
        benchmark::DoNotOptimize(t.lin.data());
        state.SetItemsProcessed(state.items_processed() +
                                t.instructions());
    }
}
BENCHMARK(BM_TraceRecord);

void
BM_ExecDirect(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    Kernel k = w.kernel;
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    SwExecConfig sc;
    sc.run = w.run;
    for (auto _ : state) {
        SwExecResult r = runSwHierarchy(k, opts, sc);
        benchmark::DoNotOptimize(r.counts.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                r.counts.instructions);
    }
}
BENCHMARK(BM_ExecDirect);

void
BM_ExecReplay(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    Kernel k = w.kernel;
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    SwExecConfig sc;
    sc.run = w.run;
    DecodedTrace trace = recordDecodedTrace(w.kernel, w.run);
    for (auto _ : state) {
        SwExecResult r = replaySwHierarchy(k, opts, trace, sc);
        benchmark::DoNotOptimize(r.counts.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                r.counts.instructions);
    }
}
BENCHMARK(BM_ExecReplay);

// ---- Cycle-level pipeline benchmarks ----
//
// BM_PipelineCycle prices one simulated cycle of the staged SM
// pipeline (issue / collector+banks / exec / writeback) on a recorded
// trace; items/sec is cycles/sec. The Arg is the two-level active-set
// size — 32 degenerates to flat round-robin, so the pair also shows
// what the swap machinery costs. BM_PipelineOneBank maximises bank
// pressure (every operand pair conflicts), the collector's worst case.

void
BM_PipelineCycle(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    DecodedTrace trace = recordDecodedTrace(w.kernel, w.run);
    trace.buildPlanes(w.kernel);
    ReplayDecode dec(w.kernel);
    PipelineConfig cfg;
    cfg.activeWarps = static_cast<int>(state.range(0));
    for (auto _ : state) {
        AccessCounts counts;
        auto acct = makeFlatAccounting(w.kernel, &dec, counts);
        PipelineResult r = runPipeline(trace, dec, *acct, cfg);
        benchmark::DoNotOptimize(r.stats.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                r.stats.cycles);
    }
}
BENCHMARK(BM_PipelineCycle)->Arg(8)->Arg(32);

void
BM_PipelineOneBank(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    DecodedTrace trace = recordDecodedTrace(w.kernel, w.run);
    trace.buildPlanes(w.kernel);
    ReplayDecode dec(w.kernel);
    PipelineConfig cfg;
    cfg.banks.numBanks = 1;
    for (auto _ : state) {
        AccessCounts counts;
        auto acct = makeFlatAccounting(w.kernel, &dec, counts);
        PipelineResult r = runPipeline(trace, dec, *acct, cfg);
        benchmark::DoNotOptimize(r.stats.bankConflicts);
        state.SetItemsProcessed(state.items_processed() +
                                r.stats.cycles);
    }
}
BENCHMARK(BM_PipelineOneBank);

// ---- Experiment-engine benchmarks ----

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> s = {
        Scheme::BASELINE, Scheme::HW_TWO_LEVEL, Scheme::HW_THREE_LEVEL,
        Scheme::SW_TWO_LEVEL, Scheme::SW_THREE_LEVEL,
    };
    return s;
}

/**
 * Full 5-scheme x 8-entry x 36-workload sweep on one thread vs. the
 * default pool. Caches are warmed up front so both variants measure
 * the grid execution itself; the ratio of these two benchmarks is the
 * engine's parallel speedup on this host.
 */
void
BM_SweepSequential(benchmark::State &state)
{
    sweepEntries(allSchemes(), ExperimentConfig{});  // warm caches
    ThreadPool pool(1);
    for (auto _ : state) {
        auto pts = sweepEntries(allSchemes(), ExperimentConfig{}, &pool);
        benchmark::DoNotOptimize(pts.data());
    }
}
BENCHMARK(BM_SweepSequential)->Unit(benchmark::kMillisecond);

void
BM_SweepParallel(benchmark::State &state)
{
    sweepEntries(allSchemes(), ExperimentConfig{});  // warm caches
    ThreadPool pool;  // defaultThreadCount() / RFH_THREADS
    for (auto _ : state) {
        auto pts = sweepEntries(allSchemes(), ExperimentConfig{}, &pool);
        benchmark::DoNotOptimize(pts.data());
    }
    state.counters["threads"] =
        static_cast<double>(pool.threadCount());
}
BENCHMARK(BM_SweepParallel)->Unit(benchmark::kMillisecond);

/**
 * Memoized baseline lookup (compare against BM_BaselineExec, the cost
 * of computing the same counts from scratch at every sweep point).
 */
void
BM_BaselineCacheHit(benchmark::State &state)
{
    const Workload &w = workloadByName("nbody");
    ExperimentCache &cache = globalExperimentCache();
    cache.baseline(w.kernel, w.run);  // warm
    for (auto _ : state) {
        const AccessCounts &c = cache.baseline(w.kernel, w.run);
        benchmark::DoNotOptimize(c.instructions);
    }
}
BENCHMARK(BM_BaselineCacheHit);

} // namespace

BENCHMARK_MAIN();
