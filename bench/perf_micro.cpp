/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: allocator
 * throughput, simulator throughput, and analysis costs. These guard
 * against performance regressions in the library (the figure harnesses
 * re-run every workload many times).
 */

#include <benchmark/benchmark.h>

#include "compiler/allocator.h"
#include "ir/cfg_analysis.h"
#include "ir/liveness.h"
#include "ir/reaching_defs.h"
#include "sim/baseline_exec.h"
#include "sim/hw_cache.h"
#include "sim/sw_exec.h"
#include "workloads/registry.h"

namespace {

using namespace rfh;

const Kernel &
bigKernel()
{
    return workloadByName("nbody").kernel;
}

void
BM_CfgAndLiveness(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    for (auto _ : state) {
        Cfg cfg(k);
        Liveness live(k, cfg);
        benchmark::DoNotOptimize(live.liveIn(0));
    }
}
BENCHMARK(BM_CfgAndLiveness);

void
BM_ReachingDefs(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    Cfg cfg(k);
    for (auto _ : state) {
        ReachingDefs rd(k, cfg);
        benchmark::DoNotOptimize(rd.numDefs());
    }
}
BENCHMARK(BM_ReachingDefs);

void
BM_AllocatorThreeLevel(benchmark::State &state)
{
    Kernel k = bigKernel();
    AllocOptions opts;
    opts.orfEntries = static_cast<int>(state.range(0));
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    for (auto _ : state) {
        AllocStats stats = alloc.run(k);
        benchmark::DoNotOptimize(stats.orfValuesFull);
    }
    state.SetItemsProcessed(state.iterations() * k.numInstrs());
}
BENCHMARK(BM_AllocatorThreeLevel)->Arg(1)->Arg(3)->Arg(8);

void
BM_BaselineExec(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    RunConfig run;
    for (auto _ : state) {
        AccessCounts c = runBaseline(k, run);
        benchmark::DoNotOptimize(c.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                c.instructions);
    }
}
BENCHMARK(BM_BaselineExec);

void
BM_HwCacheExec(benchmark::State &state)
{
    const Kernel &k = bigKernel();
    HwCacheConfig cfg;
    cfg.useLRF = true;
    for (auto _ : state) {
        AccessCounts c = runHwCache(k, cfg);
        benchmark::DoNotOptimize(c.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                c.instructions);
    }
}
BENCHMARK(BM_HwCacheExec);

void
BM_SwExec(benchmark::State &state)
{
    Kernel k = bigKernel();
    AllocOptions opts;
    opts.useLRF = true;
    opts.splitLRF = true;
    HierarchyAllocator alloc(EnergyParams{}, opts);
    alloc.run(k);
    for (auto _ : state) {
        SwExecResult r = runSwHierarchy(k, opts);
        benchmark::DoNotOptimize(r.counts.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                r.counts.instructions);
    }
}
BENCHMARK(BM_SwExec);

} // namespace

BENCHMARK_MAIN();
