/**
 * @file
 * Reproduces Figure 11: reads and writes of the two-level hierarchy
 * (hardware RFC vs software ORF), normalised to the single-level
 * register file, as the upper level grows from 1 to 8 entries/thread.
 *
 * Also prints the Section 6.1 deltas: the RFC's writeback read
 * overhead, the software scheme's write reduction, and the gains of
 * partial-range + read-operand allocation.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "core/sweep.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 11: two-level hierarchy access breakdown",
                  "SW ORF eliminates RFC writeback reads (~20% extra "
                  "reads) and ~20% of upper-level writes");

    AccessCounts base = aggregateBaselineCounts();
    ExperimentConfig cfg;
    auto points = sweepEntries({Scheme::HW_TWO_LEVEL,
                                Scheme::SW_TWO_LEVEL}, cfg);

    TextTable reads({"Entries", "HW RFC rd", "HW MRF rd", "HW total",
                     "SW ORF rd", "SW MRF rd", "SW total"});
    TextTable writes({"Entries", "HW RFC wr", "HW MRF wr", "HW total",
                      "SW ORF wr", "SW MRF wr", "SW total"});
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        AccessBreakdown hw, sw;
        for (const auto &p : points) {
            if (p.entries != e)
                continue;
            AccessBreakdown b = normalizeAccesses(p.outcome.counts, base);
            if (p.scheme == Scheme::HW_TWO_LEVEL)
                hw = b;
            else
                sw = b;
        }
        reads.addRow({std::to_string(e), pct(hw.orfReads),
                      pct(hw.mrfReads), pct(hw.totalReads()),
                      pct(sw.orfReads), pct(sw.mrfReads),
                      pct(sw.totalReads())});
        writes.addRow({std::to_string(e), pct(hw.orfWrites),
                       pct(hw.mrfWrites), pct(hw.totalWrites()),
                       pct(sw.orfWrites), pct(sw.mrfWrites),
                       pct(sw.totalWrites())});
    }
    std::printf("\n(a) Reads, normalised to baseline\n%s",
                reads.str().c_str());
    std::printf("\n(b) Writes, normalised to baseline\n%s\n",
                writes.str().c_str());

    // Section 6.1 deltas at the paper's preferred sizes.
    AccessBreakdown hw3, sw3, sw3plain;
    for (const auto &p : points) {
        if (p.entries == 3 && p.scheme == Scheme::HW_TWO_LEVEL)
            hw3 = normalizeAccesses(p.outcome.counts, base);
        if (p.entries == 3 && p.scheme == Scheme::SW_TWO_LEVEL)
            sw3 = normalizeAccesses(p.outcome.counts, base);
    }
    {
        ExperimentConfig plain = cfg;
        plain.scheme = Scheme::SW_TWO_LEVEL;
        plain.entries = 3;
        plain.partialRanges = false;
        plain.readOperands = false;
        sw3plain = normalizeAccesses(runAllWorkloads(plain).counts, base);
    }
    bench::compare("HW extra reads vs SW (writebacks, %)", 20.0,
                   100.0 * (hw3.totalReads() - sw3.totalReads()));
    bench::compare("SW upper-level write reduction vs HW (%)", 20.0,
                   100.0 * (hw3.orfWrites - sw3.orfWrites) /
                       (hw3.orfWrites > 0 ? hw3.orfWrites : 1.0));
    bench::compare("partial+read-operand MRF read cut (rel %)", 20.0,
                   100.0 * (sw3plain.mrfReads - sw3.mrfReads) /
                       (sw3plain.mrfReads > 0 ? sw3plain.mrfReads : 1.0));
    bench::compare("partial+read-operand ORF write increase (rel %)",
                   8.0,
                   100.0 * (sw3.orfWrites - sw3plain.orfWrites) /
                       (sw3plain.orfWrites > 0 ? sw3plain.orfWrites
                                               : 1.0));
    return 0;
}
