/**
 * @file
 * Reproduces Figure 14: energy breakdown (storage access vs wire, per
 * hierarchy level) of the most energy-efficient configuration — the
 * software three-level design with a 3-entry ORF and split LRF — as
 * the ORF size sweeps 1..8.
 *
 * Paper headline: about two thirds of the remaining energy is spent on
 * the MRF, split roughly evenly between access and wire energy; the
 * LRF serves a third of reads yet costs almost nothing (<1% wire).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "core/sweep.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 14: energy breakdown of the best design",
                  "~2/3 of residual energy is MRF, split evenly between "
                  "access and wire");

    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;

    TextTable t({"Entries", "MRF wire", "MRF acc", "ORF wire", "ORF acc",
                 "LRF wire", "LRF acc", "Total"});
    double mrf_share = 0, mrf_acc = 0, mrf_wire = 0, lrf_wire = 0;
    for (int e = 1; e <= kMaxOrfEntries; e++) {
        cfg.entries = e;
        RunOutcome o = runAllWorkloads(cfg);
        EnergyModel em(cfg.energy, e, true);
        const AccessCounts &c = o.counts;
        double base = o.baselineEnergyPJ;
        double vals[6] = {
            c.wireEnergyPJ(em, Level::MRF) / base,
            c.accessEnergyPJ(em, Level::MRF) / base,
            c.wireEnergyPJ(em, Level::ORF) / base,
            c.accessEnergyPJ(em, Level::ORF) / base,
            c.wireEnergyPJ(em, Level::LRF) / base,
            c.accessEnergyPJ(em, Level::LRF) / base,
        };
        double total = 0;
        for (double v : vals)
            total += v;
        t.addRow({std::to_string(e), pct(vals[0]), pct(vals[1]),
                  pct(vals[2]), pct(vals[3]), pct(vals[4]), pct(vals[5]),
                  pct(total)});
        if (e == 3) {
            mrf_wire = vals[0];
            mrf_acc = vals[1];
            mrf_share = (vals[0] + vals[1]) / total;
            lrf_wire = vals[4];
        }
    }
    std::printf("\nShare of baseline energy by component\n%s\n",
                t.str().c_str());

    bench::compare("MRF share of residual energy (%)", 66.0,
                   100.0 * mrf_share);
    bench::compare("MRF access/wire balance (acc % of MRF)", 50.0,
                   100.0 * mrf_acc / (mrf_acc + mrf_wire));
    bench::compare("LRF wire energy (% of baseline)", 1.0,
                   100.0 * lrf_wire);
    return 0;
}
