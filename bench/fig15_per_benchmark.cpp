/**
 * @file
 * Reproduces Figure 15: per-benchmark normalised register file energy
 * for the most efficient configuration (3-entry ORF, split LRF,
 * partial-range + read-operand allocation), sorted by savings.
 *
 * Paper headline: savings range from ~25-30% (reduction, scalarprod —
 * tight global-load loops that keep invalidating the ORF/LRF) up to
 * well above the 54% average for compute-dense kernels.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/report.h"
#include "core/experiment.h"

using namespace rfh;

int
main()
{
    bench::header("Figure 15: per-benchmark energy of the best design",
                  "reduction/scalarprod save least (~25-30%); average "
                  "54%");

    ExperimentConfig cfg;
    cfg.scheme = Scheme::SW_THREE_LEVEL;
    cfg.entries = 3;

    struct Row
    {
        std::string name;
        std::string suite;
        double norm;
    };
    std::vector<Row> rows;
    double worst = 0.0;
    std::string worst_name;
    for (const Workload &w : allWorkloads()) {
        RunOutcome o = runScheme(w, cfg);
        if (!o.ok()) {
            std::printf("VERIFICATION FAILURE: %s\n", o.error.c_str());
            return 1;
        }
        rows.push_back({w.name, w.suite, o.normalizedEnergy()});
        if (o.normalizedEnergy() > worst) {
            worst = o.normalizedEnergy();
            worst_name = w.name;
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.norm < b.norm; });

    TextTable t({"Benchmark", "Suite", "Normalised energy", "Savings"});
    for (const Row &r : rows)
        t.addRow({r.name, r.suite, fmt(r.norm, 3), pct(1 - r.norm)});
    std::printf("\n%s\n", t.str().c_str());

    double reduction = 0, scalarprod = 0;
    for (const Row &r : rows) {
        if (r.name == "reduction")
            reduction = r.norm;
        if (r.name == "scalarprod")
            scalarprod = r.norm;
    }
    bench::compare("reduction savings (%)", 25.0,
                   100.0 * (1 - reduction));
    bench::compare("scalarprod savings (%)", 30.0,
                   100.0 * (1 - scalarprod));
    std::printf("  least-saving benchmark: %s (%.1f%%)\n",
                worst_name.c_str(), 100.0 * (1 - worst));
    return 0;
}
