/**
 * @file
 * SM microarchitecture context (Section 2 / Figure 1): SIMT divergence
 * behaviour and MRF bank-conflict pressure across the workload suite.
 *
 * These numbers motivate two of the paper's design choices:
 *  - the MRF needs 32 banks plus multi-cycle operand buffering, while
 *    the 3R/1W ORF and LRF read all operands in one cycle and drop the
 *    distribution logic (Section 3.2);
 *  - register file access counting happens per warp instruction, so
 *    SIMD efficiency quantifies how faithfully warp-level counts model
 *    the divergent per-thread reality.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "sim/mrf_banks.h"
#include "sim/simt.h"
#include "workloads/registry.h"

using namespace rfh;

int
main()
{
    bench::header("Section 2 / Figure 1: SM microarchitecture context",
                  "32-bank MRF with multi-cycle operand collection; "
                  "SIMT warps with active masks");

    TextTable t({"Benchmark", "SIMD eff", "Divergences",
                 "MRF conflict rate", "Fetch cyc/instr"});
    double eff_sum = 0, conf_sum = 0, fetch_sum = 0;
    int n = 0;
    for (const Workload &w : allWorkloads()) {
        SimtStats ss = runSimt(w.kernel, 2, 8);
        MrfBankConfig bc;
        bc.run = w.run;
        bc.run.numWarps = 4;
        MrfBankStats bs = measureBankConflicts(w.kernel, bc);
        t.addRow({w.name, pct(ss.simdEfficiency),
                  std::to_string(ss.divergences),
                  pct(bs.conflictRate()), fmt(bs.avgFetchCycles(), 2)});
        eff_sum += ss.simdEfficiency;
        conf_sum += bs.conflictRate();
        fetch_sum += bs.avgFetchCycles();
        n++;
    }
    std::printf("\n%s\n", t.str().c_str());
    std::printf("Averages: SIMD efficiency %s, MRF conflict rate %s, "
                "%.2f operand-fetch cycles/instr.\n",
                pct(eff_sum / n).c_str(), pct(conf_sum / n).c_str(),
                fetch_sum / n);

    // With one bank, every multi-operand instruction conflicts — the
    // banking requirement the paper's Figure 1(c) addresses.
    MrfBankConfig one;
    one.numBanks = 1;
    MrfBankStats worst = measureBankConflicts(
        workloadByName("nbody").kernel, one);
    MrfBankConfig full;
    MrfBankStats best = measureBankConflicts(
        workloadByName("nbody").kernel, full);
    std::printf("\nnbody operand fetch: %d bank(s) -> %.2f cyc/instr, "
                "32 banks -> %.2f cyc/instr\n", 1,
                worst.avgFetchCycles(), best.avgFetchCycles());
    bench::compare("32-bank conflict rate, suite average (%)", 5.0,
                   100.0 * conf_sum / n);
    return 0;
}
