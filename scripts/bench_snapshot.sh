#!/usr/bin/env bash
#
# Capture a performance snapshot of the toolchain itself: the
# google-benchmark microbenchmarks (allocator / simulator / replay
# engine throughput) plus the fig13 figure harness's engine timing
# (per-phase seconds, dynamic instructions/second, memoization hit
# rates). The combined document is written to BENCH_<n>.json at the
# repo root, where <n> is the next free index — successive snapshots
# accumulate so regressions can be diffed across commits.
#
#   scripts/bench_snapshot.sh              # default thread count
#   RFH_THREADS=1 scripts/bench_snapshot.sh
#
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

if ! command -v python3 >/dev/null 2>&1; then
    echo "bench_snapshot.sh: python3 is required to compose the JSON" >&2
    exit 1
fi

echo "== build benchmark targets (${jobs} jobs) =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs" \
    --target perf_micro fig13_energy >/dev/null

n=0
while [[ -e "$repo/BENCH_${n}.json" ]]; do n=$((n + 1)); done
out="$repo/BENCH_${n}.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== perf_micro =="
# Repetitions + aggregates: the diff gate compares the median row of
# each benchmark, which is robust to scheduler noise on loaded hosts.
"$repo/build/bench/perf_micro" --benchmark_format=json \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    >"$tmp/micro.json"

echo "== fig13_energy (engine timing) =="
RFH_TIMING_JSON=1 "$repo/build/bench/fig13_energy" >"$tmp/fig13.txt"
# The timing JSON is the last line of the harness output.
tail -n 1 "$tmp/fig13.txt" >"$tmp/fig13.json"

python3 - "$tmp/micro.json" "$tmp/fig13.json" "$out" <<'EOF'
import json
import sys

micro_path, fig13_path, out_path = sys.argv[1:4]
with open(micro_path) as f:
    micro = json.load(f)
with open(fig13_path) as f:
    fig13 = json.load(f)

cache = fig13.get("cache", {})


def rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


phases = {k: 0.0 for k in
          ("analyzeSec", "traceSec", "allocateSec", "executeSec")}
dyn = 0
for pt in fig13.get("points", []):
    for k in phases:
        phases[k] += pt.get(k, 0.0)
    dyn += int(pt.get("dynInstrs", 0))

snapshot = {
    "microbenchmarks": micro,
    "fig13": {
        "wallSec": fig13.get("wallSec"),
        "cpuSec": fig13.get("cpuSec"),
        "threads": fig13.get("threads"),
        "speedup": fig13.get("speedup"),
        "phases": phases,
        "dynInstrs": dyn,
        "instrPerSec": (dyn / phases["executeSec"]
                        if phases["executeSec"] > 0 else 0.0),
        "cache": cache,
        "cacheHitRates": {
            "baseline": rate(cache.get("baselineHits", 0),
                             cache.get("baselineMisses", 0)),
            "analysis": rate(cache.get("analysisHits", 0),
                             cache.get("analysisMisses", 0)),
            "trace": rate(cache.get("traceHits", 0),
                          cache.get("traceMisses", 0)),
        },
        "points": fig13.get("points"),
    },
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
EOF

echo "== snapshot written to ${out} =="
