#!/usr/bin/env bash
#
# Compare two performance snapshots (BENCH_<n>.json from
# scripts/bench_snapshot.sh, or rfh-manifest-v1 files from
# `rfhc run --manifest` / $RFH_MANIFEST) and fail on regression.
# Thin wrapper over `rfhc bench-diff`, building it if needed.
#
#   scripts/bench_diff.sh BENCH_0.json BENCH_1.json
#   scripts/bench_diff.sh old.json new.json 0.25   # 25% threshold
#
# Exit status: 0 when no benchmark regressed past the threshold,
# 1 on regression or unreadable snapshots, 2 on usage errors.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
    echo "usage: scripts/bench_diff.sh <old.json> <new.json> [threshold]" >&2
    exit 2
fi
old="$1"
new="$2"
threshold="${3:-0.10}"

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
rfhc="$repo/build/examples/rfhc"

if [[ ! -x "$rfhc" ]]; then
    echo "== building rfhc ==" >&2
    cmake -B "$repo/build" -S "$repo" >/dev/null
    cmake --build "$repo/build" -j "$jobs" --target rfhc >/dev/null
fi

exec "$rfhc" bench-diff "$old" "$new" --threshold "$threshold"
