#!/bin/sh
# Build everything, run the full test suite, and regenerate every
# table and figure of the paper, capturing the outputs at the repo root.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "### $b" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Done. See test_output.txt and bench_output.txt, and compare the"
echo "paper-vs-measured lines against EXPERIMENTS.md."
