#!/usr/bin/env bash
#
# Full local gate: configure, build, and run the test suite, then
# rebuild with ThreadSanitizer and exercise the parallel experiment
# engine under it. Usage:
#
#   scripts/check.sh            # release-ish build + ctest + TSan pass
#   scripts/check.sh --no-tsan  # skip the sanitizer stage
#
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== build + test (${jobs} jobs) =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
    echo "== ThreadSanitizer: parallel engine =="
    cmake -B "$repo/build-tsan" -S "$repo" -DRFH_SANITIZE=thread >/dev/null
    cmake --build "$repo/build-tsan" -j "$jobs" --target rfh_tests
    # Exercise the thread pool and the parallel sweep (the code that
    # actually runs concurrently) with a real multi-thread pool even
    # on small CI hosts.
    RFH_THREADS=4 "$repo/build-tsan/tests/rfh_tests" \
        --gtest_filter='Parallel.*:Sweep.*:Memo.*'
fi

echo "== all checks passed =="
