#!/usr/bin/env bash
#
# Full local gate: configure, build, and run the test suite, then
# rebuild with ThreadSanitizer and exercise the parallel experiment
# engine under it, and with AddressSanitizer over the trace/replay
# engine (whose pre-decoded buffers and ring-buffer RFC are the
# library's most index-heavy code). Usage:
#
#   scripts/check.sh            # build + ctest + TSan + ASan passes
#   scripts/check.sh --no-tsan  # skip the TSan stage
#   scripts/check.sh --no-asan  # skip the ASan stage
#
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
run_tsan=1
run_asan=1
for arg in "$@"; do
    [[ "$arg" == "--no-tsan" ]] && run_tsan=0
    [[ "$arg" == "--no-asan" ]] && run_asan=0
done

echo "== build + test (${jobs} jobs) =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
    echo "== ThreadSanitizer: parallel engine =="
    cmake -B "$repo/build-tsan" -S "$repo" -DRFH_SANITIZE=thread >/dev/null
    cmake --build "$repo/build-tsan" -j "$jobs" --target rfh_tests
    # Exercise the thread pool and the parallel sweep (the code that
    # actually runs concurrently) with a real multi-thread pool even
    # on small CI hosts.
    RFH_THREADS=4 "$repo/build-tsan/tests/rfh_tests" \
        --gtest_filter='Parallel.*:Sweep.*:Memo.*'
fi

if [[ "$run_asan" == 1 ]]; then
    echo "== AddressSanitizer: trace + replay engine =="
    cmake -B "$repo/build-asan" -S "$repo" -DRFH_SANITIZE=address >/dev/null
    cmake --build "$repo/build-asan" -j "$jobs" --target rfh_tests
    # The recording walk, the pre-decoded SoA buffers, and every
    # replay executor's pointer-walking hot loop.
    "$repo/build-asan/tests/rfh_tests" \
        --gtest_filter='Trace.*:Replay.*:Seeds/ReplayProperty.*'
fi

echo "== all checks passed =="
