#!/usr/bin/env bash
#
# Full local gate: configure, build, and run the test suite, then
# rebuild with ThreadSanitizer and exercise the parallel experiment
# engine under it, and with AddressSanitizer over the trace/replay
# engine (whose pre-decoded buffers and ring-buffer RFC are the
# library's most index-heavy code). Two observability gates follow:
# a Doxygen-warning check over the metrics/trace/manifest/replay
# headers (skipped when doxygen is not installed) and a performance
# gate that takes a fresh snapshot and diffs it against the newest
# committed BENCH_<n>.json with `rfhc bench-diff` (skipped when no
# snapshot exists). Usage:
#
#   scripts/check.sh              # build + ctest + sanitizers + gates
#   scripts/check.sh --no-tsan    # skip the TSan stage
#   scripts/check.sh --no-asan    # skip the ASan stage
#   scripts/check.sh --no-perf    # skip the bench-diff perf gate
#   scripts/check.sh --no-fuzz    # skip the differential fuzz smoke
#   scripts/check.sh --no-golden  # skip the golden figure-shape gate
#   scripts/check.sh --no-pipeline # skip the cycle-level pipeline gate
#   scripts/check.sh --no-serve   # skip the serve+loadgen smoke
#   scripts/check.sh --no-router  # skip the router fleet smoke
#   scripts/check.sh --no-vec     # skip the vectorize-report gate
#   scripts/check.sh --no-compare # skip the leaderboard smoke
#   scripts/check.sh --no-corpus  # skip the corpus population gate
#
# The fuzz smoke runs a fixed-seed `rfhc fuzz` campaign (differential
# oracle + allocator-invariant checker over generated kernels) and, in
# the ASan stage, the oracle over the checked-in corpus; any finding
# fails the gate and leaves a shrunk .rptx repro behind.
#
# RFH_BENCH_THRESHOLD sets the perf gate's relative regression
# threshold (default 0.50 — generous, since CI machines are noisy).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
run_tsan=1
run_asan=1
run_perf=1
run_fuzz=1
run_golden=1
run_pipeline=1
run_serve=1
run_router=1
run_vec=1
run_compare=1
run_corpus=1
for arg in "$@"; do
    [[ "$arg" == "--no-tsan" ]] && run_tsan=0
    [[ "$arg" == "--no-asan" ]] && run_asan=0
    [[ "$arg" == "--no-perf" ]] && run_perf=0
    [[ "$arg" == "--no-fuzz" ]] && run_fuzz=0
    [[ "$arg" == "--no-golden" ]] && run_golden=0
    [[ "$arg" == "--no-pipeline" ]] && run_pipeline=0
    [[ "$arg" == "--no-serve" ]] && run_serve=0
    [[ "$arg" == "--no-router" ]] && run_router=0
    [[ "$arg" == "--no-vec" ]] && run_vec=0
    [[ "$arg" == "--no-compare" ]] && run_compare=0
    [[ "$arg" == "--no-corpus" ]] && run_corpus=0
done

echo "== build + test (${jobs} jobs) =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"
# The golden, pipeline, and corpus tiers run as their own gated
# stages below; keep the main run on the unit/property/fuzz tiers.
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" \
    -LE 'golden|pipeline|corpus'

if [[ "$run_vec" == 1 ]]; then
    echo "== vectorize report: replay classification loop =="
    # The SoA flags-classification sweep in sim/replay_kernels.cpp is
    # the replay engine's innermost loop; the build compiles that TU
    # at -O3 (src/CMakeLists.txt) precisely so it autovectorizes.
    # Recompile it standalone with the vectorizer report and fail the
    # gate if the loop ever stops vectorizing.
    veclog="$(mktemp)"
    if ! c++ -std=c++20 -O3 -fopt-info-vec-optimized \
        -I "$repo/src" -c "$repo/src/sim/replay_kernels.cpp" \
        -o /dev/null 2>"$veclog"; then
        cat "$veclog" >&2
        echo "check.sh: replay_kernels.cpp failed to compile" >&2
        rm -f "$veclog"
        exit 1
    fi
    if ! grep -q "loop vectorized" "$veclog"; then
        cat "$veclog" >&2
        echo "check.sh: replay classification loop no longer" \
             "vectorizes (see report above)" >&2
        rm -f "$veclog"
        exit 1
    fi
    rm -f "$veclog"
fi

if [[ "$run_pipeline" == 1 ]]; then
    echo "== cycle-level pipeline gate: stage/port/scheduler suite =="
    # Port conservation, tick determinism, scheduler-policy
    # equivalences, and the pipeline-vs-functional count cross-checks
    # (tests/test_pipeline.cpp); `--no-pipeline` skips.
    ctest --test-dir "$repo/build" --output-on-failure -L pipeline
fi

if [[ "$run_golden" == 1 ]]; then
    echo "== golden figure-shape gate: EXPERIMENTS.md bands =="
    # Deterministic full-registry sweeps pinned to the headline bands
    # (tests/test_golden.cpp); a failure means a result-moving change
    # that must update the bands and EXPERIMENTS.md together.
    ctest --test-dir "$repo/build" --output-on-failure -L golden
fi

if [[ "$run_serve" == 1 ]]; then
    echo "== batch service smoke: serve + loadgen over a Unix socket =="
    sock="$(mktemp -u /tmp/rfhc-check-XXXXXX.sock)"
    "$repo/build/examples/rfhc" serve --socket "$sock" --queue 8 &
    serve_pid=$!
    # loadgen retries until the socket appears, verifies every result
    # byte-for-byte against a local runScheme(), and sends shutdown;
    # the server must then drain and exit 0 on its own.
    if ! "$repo/build/examples/rfhc" loadgen --socket "$sock" \
        --clients 4 --requests 50 --verify --shutdown; then
        kill "$serve_pid" 2>/dev/null || true
        echo "check.sh: service loadgen failed" >&2
        exit 1
    fi
    if ! wait "$serve_pid"; then
        echo "check.sh: rfhc serve did not exit cleanly" >&2
        exit 1
    fi
    rm -f "$sock"
fi

if [[ "$run_router" == 1 ]]; then
    echo "== router fleet smoke: 3 workers + shared disk cache =="
    rsock="$(mktemp -u /tmp/rfhc-router-XXXXXX.sock)"
    rcache="$(mktemp -d /tmp/rfhc-cache-XXXXXX)"
    "$repo/build/examples/rfhc" router --socket "$rsock" --fleet 3 \
        --cache-dir "$rcache" &
    router_pid=$!
    # loadgen verifies every result byte-for-byte, prints the
    # per-shard breakdown and disk-cache hit ratio, and sends
    # shutdown; the router must then drain its fleet and exit 0.
    if ! "$repo/build/examples/rfhc" loadgen --socket "$rsock" \
        --clients 4 --requests 60 --verify --router --shutdown; then
        kill "$router_pid" 2>/dev/null || true
        rm -rf "$rcache"
        echo "check.sh: router loadgen failed" >&2
        exit 1
    fi
    if ! wait "$router_pid"; then
        rm -rf "$rcache"
        echo "check.sh: rfhc router did not exit cleanly" >&2
        exit 1
    fi
    rm -f "$rsock"
    rm -rf "$rcache"
fi

if [[ "$run_compare" == 1 ]]; then
    echo "== cross-scheme leaderboard smoke: rfhc compare =="
    # Every registered backend must rank cleanly: the leaderboard JSON
    # must parse, carry one row per scheme, and report no per-row run
    # errors. The ranking values themselves are pinned by the golden
    # tier; this smoke only proves the registry-driven board stays
    # runnable end to end.
    cmpjson="$(mktemp)"
    if ! "$repo/build/examples/rfhc" compare --json --out "$cmpjson"
    then
        rm -f "$cmpjson"
        echo "check.sh: rfhc compare failed" >&2
        exit 1
    fi
    if grep -q '"error"' "$cmpjson"; then
        cat "$cmpjson" >&2
        echo "check.sh: leaderboard row reported a run error" >&2
        rm -f "$cmpjson"
        exit 1
    fi
    rm -f "$cmpjson"
fi

if [[ "$run_corpus" == 1 ]]; then
    echo "== corpus population gate: statistical bands + identity =="
    # The corpus-label suite pins the population golden bands, the
    # profile round trip, and the seed-corpus drift guard
    # (tests/test_corpus.cpp); `--no-corpus` skips.
    ctest --test-dir "$repo/build" --output-on-failure -L corpus

    # Byte-identity smoke at the CLI: the same small corpus must
    # produce identical aggregate JSON at 1 and 4 threads, and again
    # when served over a Unix socket fleet.
    c1="$(mktemp)"; c4="$(mktemp)"; cs="$(mktemp)"
    corpus_args=(corpus --profiles balanced,divergent --n 64
                 --schemes sw3,hw2 --entries 3 --json)
    RFH_THREADS=1 "$repo/build/examples/rfhc" "${corpus_args[@]}" \
        >"$c1"
    RFH_THREADS=4 "$repo/build/examples/rfhc" "${corpus_args[@]}" \
        >"$c4"
    if ! cmp -s "$c1" "$c4"; then
        rm -f "$c1" "$c4" "$cs"
        echo "check.sh: corpus JSON differs across thread counts" >&2
        exit 1
    fi
    if [[ "$run_serve" == 1 ]]; then
        csock="$(mktemp -u /tmp/rfhc-corpus-XXXXXX.sock)"
        "$repo/build/examples/rfhc" serve --socket "$csock" &
        corpus_serve_pid=$!
        if ! "$repo/build/examples/rfhc" "${corpus_args[@]}" \
            --socket "$csock" >"$cs"; then
            kill "$corpus_serve_pid" 2>/dev/null || true
            rm -f "$c1" "$c4" "$cs"
            echo "check.sh: corpus fleet run failed" >&2
            exit 1
        fi
        kill "$corpus_serve_pid" 2>/dev/null || true
        wait "$corpus_serve_pid" 2>/dev/null || true
        rm -f "$csock"
        if ! cmp -s "$c1" "$cs"; then
            rm -f "$c1" "$c4" "$cs"
            echo "check.sh: corpus JSON differs local vs fleet" >&2
            exit 1
        fi
    fi
    rm -f "$c1" "$c4" "$cs"
fi

if [[ "$run_fuzz" == 1 ]]; then
    echo "== differential fuzz smoke: 200 kernels, fixed seed =="
    # Deterministic: a finding here reproduces with the same seed, and
    # the shrunk repro is written next to the working directory.
    "$repo/build/examples/rfhc" fuzz --iters 200 --seed 1 --shrink
fi

if [[ "$run_tsan" == 1 ]]; then
    echo "== ThreadSanitizer: parallel engine =="
    cmake -B "$repo/build-tsan" -S "$repo" -DRFH_SANITIZE=thread >/dev/null
    cmake --build "$repo/build-tsan" -j "$jobs" --target rfh_tests
    # Exercise the thread pool and the parallel sweep (the code that
    # actually runs concurrently) with a real multi-thread pool even
    # on small CI hosts.
    # DiskCache.* covers concurrent readers racing store()/eviction in
    # the persistent compile cache.
    RFH_THREADS=4 "$repo/build-tsan/tests/rfh_tests" \
        --gtest_filter='Parallel.*:Sweep.*:Memo.*:DiskCache.*'
fi

if [[ "$run_asan" == 1 ]]; then
    echo "== AddressSanitizer: trace + replay engine =="
    cmake -B "$repo/build-asan" -S "$repo" -DRFH_SANITIZE=address >/dev/null
    cmake --build "$repo/build-asan" -j "$jobs" --target rfh_tests
    # The recording walk, the pre-decoded SoA buffers, and every
    # replay executor's pointer-walking hot loop.
    # DiskCache.* adds the serializer round-trips and torn-entry
    # parsing (length-prefixed reads over untrusted file bytes).
    "$repo/build-asan/tests/rfh_tests" \
        --gtest_filter='Trace.*:Replay.*:Seeds/ReplayProperty.*:DiskCache.*'
    if [[ "$run_fuzz" == 1 ]]; then
        # The differential oracle over the checked-in corpus: every
        # scheme x engine pair runs under ASan, so an out-of-bounds
        # RFC/ORF index aborts even when the counters happen to agree.
        cmake --build "$repo/build-asan" -j "$jobs" \
            --target rfh_verify_tests
        "$repo/build-asan/tests/rfh_verify_tests" \
            --gtest_filter='VerifyOracle.*:VerifyInvariants.*'
    fi
fi

if command -v doxygen >/dev/null 2>&1; then
    echo "== doxygen: no warnings in the observability headers =="
    doxlog="$(mktemp)"
    trap 'rm -f "$doxlog"' EXIT
    (cd "$repo" &&
        { cat Doxyfile; echo "WARN_LOGFILE = $doxlog"; } | doxygen - \
            >/dev/null)
    # New-in-this-layer headers must stay warning-free; the gate is
    # scoped so pre-existing debt elsewhere does not block CI.
    gated='core/metrics\.|core/trace_events\.|core/manifest\.|core/benchdiff\.|sim/replay_kernels\.|sim/replay_arena\.|core/scheme\.|core/leaderboard\.|sim/cc_rfc\.|sim/regdem\.|sim/greener\.|sim/rfc_ring\.|sim/tick\.|sim/port\.|sim/pipeline|core/stats\.|core/corpus\.|workloads/profiles\.|service/corpus_client\.|service/net\.'
    if grep -E "$gated" "$doxlog"; then
        echo "check.sh: doxygen warnings in gated headers (above)" >&2
        exit 1
    fi
else
    echo "== doxygen not installed; skipping the docs gate =="
fi

if [[ "$run_perf" == 1 ]]; then
    base=""
    n=0
    while [[ -e "$repo/BENCH_${n}.json" ]]; do
        base="$repo/BENCH_${n}.json"
        n=$((n + 1))
    done
    if [[ -n "$base" ]]; then
        echo "== perf gate: fresh snapshot vs $(basename "$base") =="
        "$repo/scripts/bench_snapshot.sh"
        fresh="$repo/BENCH_${n}.json"
        threshold="${RFH_BENCH_THRESHOLD:-0.50}"
        if ! "$repo/scripts/bench_diff.sh" "$base" "$fresh" "$threshold"
        then
            echo "check.sh: performance regressed past ${threshold}" >&2
            exit 1
        fi
        rm -f "$fresh"
    else
        echo "== no BENCH_<n>.json snapshot; skipping the perf gate =="
    fi
fi

echo "== all checks passed =="
